//! Chunked slice kernels over [`PrimeField`] — the data-parallel layer.
//!
//! Every fast path in the stack (NTT butterflies, subproduct-tree level
//! passes, batch inversions, pointwise transform products) is a loop of
//! identical, independent field operations. The scalar methods in
//! [`crate::fp`] are already branchless, but calling them one element at
//! a time leaves instruction-level parallelism on the table: each
//! Barrett/Shoup reduction is a short dependency chain, and eight such
//! chains run concurrently on a modern core. The kernels here process
//! slices in fixed-width blocks of [`LANES`] lanes — no branches, no `%`,
//! no allocation inside the loops — so the compiler can unroll,
//! autovectorize the add/sub/min lanes, and keep the multiplier saturated
//! on the widening lanes.
//!
//! Two families live here:
//!
//! * **Fully-reduced kernels** (`add_slice`, `sub_slice`, `mul_slice`,
//!   `mul_shoup_slice`, `mul_const_shoup_slice`, `mul_add_slice`,
//!   `reduce_slice`, `inv_batch_blocked`) — drop-in slice versions of the
//!   scalar ops, bit-identical element-for-element.
//! * **Lazy-reduction butterfly kernels** (`butterfly_ct_lazy_slice`,
//!   `butterfly_gs_lazy_slice`, `reduce_lazy_slice`) — Harvey-style NTT
//!   lanes that carry values in a redundant `[0, 4q)` / `[0, 2q)`
//!   representation across butterfly rounds and reduce once at the end,
//!   cutting the per-butterfly correction chain from three conditional
//!   subtractions to one. Callers (the `camelot-poly` transforms) must
//!   fully reduce before handing values back out; the transform outputs
//!   are then bit-identical to the scalar-butterfly path.
//!
//! The headroom argument: `q < 2^62` ([`crate::MAX_MODULUS`]), so
//! `4q < 2^64` and every redundant representative fits a `u64`; the Shoup
//! product `a·c - ⌊a·c_shoup/2^64⌋·q` lands in `[0, 2q)` for *any*
//! `a < 2^64` when `c < q`, which is what lets the lazy lanes skip input
//! corrections entirely.

use crate::fp::{mulhi_u128, PrimeField};

/// Fixed inner-block width of every slice kernel. Eight 64-bit lanes is
/// one AVX-512 register or two AVX2 registers for the add/sub/min lanes,
/// and eight independent dependency chains for the widening multiplies.
pub const LANES: usize = 8;

/// Minimum length at which [`PrimeField::inv_batch_blocked`] uses the
/// multi-chain layout; shorter inputs delegate to the scalar
/// [`PrimeField::inv_batch`] (the chain bookkeeping costs more than it
/// saves below this).
const INV_BLOCK_MIN: usize = 4 * LANES;

// lint:hot-begin(slice-kernels) — the data-parallel lanes every NTT
// butterfly, tree level pass, and batch inversion routes through. No `%`,
// no clones, no allocation; camelot-lint enforces this region.

/// Branchless Barrett reduction of an arbitrary `u128` into `[0, q)`:
/// the quotient estimate undershoots by at most 2, so two conditional
/// subtractions finish the job (bit-identical to the scalar correction
/// loop, which runs at most twice for the same reason).
#[inline]
fn barrett_lane(q: u64, barrett: u128, a: u128) -> u64 {
    let q_hat = mulhi_u128(a, barrett);
    let r = (a as u64).wrapping_sub((q_hat as u64).wrapping_mul(q));
    let r = r.min(r.wrapping_sub(q));
    r.min(r.wrapping_sub(q))
}

/// Shoup product `a · c mod q` left in the redundant range `[0, 2q)`:
/// two word multiplications and no correction. Valid for *any* `a`
/// (reduced or lazy) as long as `c < q` and `c_shoup` is its companion.
#[inline]
fn shoup_lane_lazy(q: u64, a: u64, c: u64, c_shoup: u64) -> u64 {
    let q_hat = ((u128::from(a) * u128::from(c_shoup)) >> 64) as u64;
    a.wrapping_mul(c).wrapping_sub(q_hat.wrapping_mul(q))
}

impl PrimeField {
    /// `acc[i] ← acc[i] + rhs[i] mod q` lane-wise. Inputs must be
    /// reduced; bit-identical to a loop of [`PrimeField::add`].
    ///
    /// # Panics
    ///
    /// Panics unless the slices have equal length.
    pub fn add_slice(&self, acc: &mut [u64], rhs: &[u64]) {
        assert_eq!(acc.len(), rhs.len(), "slice kernel length mismatch");
        let q = self.q;
        let mut a_it = acc.chunks_exact_mut(LANES);
        let mut b_it = rhs.chunks_exact(LANES);
        for (xa, xb) in (&mut a_it).zip(&mut b_it) {
            for i in 0..LANES {
                let s = xa[i] + xb[i];
                xa[i] = s.min(s.wrapping_sub(q));
            }
        }
        for (x, &y) in a_it.into_remainder().iter_mut().zip(b_it.remainder()) {
            let s = *x + y;
            *x = s.min(s.wrapping_sub(q));
        }
    }

    /// `acc[i] ← acc[i] - rhs[i] mod q` lane-wise. Inputs must be
    /// reduced; bit-identical to a loop of [`PrimeField::sub`].
    ///
    /// # Panics
    ///
    /// Panics unless the slices have equal length.
    pub fn sub_slice(&self, acc: &mut [u64], rhs: &[u64]) {
        assert_eq!(acc.len(), rhs.len(), "slice kernel length mismatch");
        let q = self.q;
        let mut a_it = acc.chunks_exact_mut(LANES);
        let mut b_it = rhs.chunks_exact(LANES);
        for (xa, xb) in (&mut a_it).zip(&mut b_it) {
            for i in 0..LANES {
                let d = xa[i].wrapping_sub(xb[i]);
                xa[i] = d.min(d.wrapping_add(q));
            }
        }
        for (x, &y) in a_it.into_remainder().iter_mut().zip(b_it.remainder()) {
            let d = x.wrapping_sub(y);
            *x = d.min(d.wrapping_add(q));
        }
    }

    /// `acc[i] ← acc[i] · rhs[i] mod q` lane-wise through Barrett
    /// reduction. Bit-identical to a loop of [`PrimeField::mul`] on
    /// reduced inputs; also accepts lazy (`< 4q`) operands — any pair
    /// whose product fits `u128` reduces fully into `[0, q)`.
    ///
    /// # Panics
    ///
    /// Panics unless the slices have equal length.
    pub fn mul_slice(&self, acc: &mut [u64], rhs: &[u64]) {
        assert_eq!(acc.len(), rhs.len(), "slice kernel length mismatch");
        let (q, barrett) = (self.q, self.barrett);
        let mut a_it = acc.chunks_exact_mut(LANES);
        let mut b_it = rhs.chunks_exact(LANES);
        for (xa, xb) in (&mut a_it).zip(&mut b_it) {
            for i in 0..LANES {
                xa[i] = barrett_lane(q, barrett, u128::from(xa[i]) * u128::from(xb[i]));
            }
        }
        for (x, &y) in a_it.into_remainder().iter_mut().zip(b_it.remainder()) {
            *x = barrett_lane(q, barrett, u128::from(*x) * u128::from(y));
        }
    }

    /// `acc[i] ← acc[i] + a[i] · b[i] mod q` lane-wise (fused multiply-
    /// add through one widened Barrett reduction per lane). Bit-identical
    /// to a loop of [`PrimeField::mul_add`] on reduced inputs; `a`/`b`
    /// may also be lazy (`< 4q`) operands from the transform-domain
    /// kernels.
    ///
    /// # Panics
    ///
    /// Panics unless the slices have equal length.
    pub fn mul_add_slice(&self, acc: &mut [u64], a: &[u64], b: &[u64]) {
        assert_eq!(acc.len(), a.len(), "slice kernel length mismatch");
        assert_eq!(acc.len(), b.len(), "slice kernel length mismatch");
        let (q, barrett) = (self.q, self.barrett);
        let mut acc_it = acc.chunks_exact_mut(LANES);
        let mut a_it = a.chunks_exact(LANES);
        let mut b_it = b.chunks_exact(LANES);
        for ((xs, ys), zs) in (&mut acc_it).zip(&mut a_it).zip(&mut b_it) {
            for i in 0..LANES {
                let wide = u128::from(ys[i]) * u128::from(zs[i]) + u128::from(xs[i]);
                xs[i] = barrett_lane(q, barrett, wide);
            }
        }
        let tail = acc_it.into_remainder();
        for ((x, &y), &z) in tail.iter_mut().zip(a_it.remainder()).zip(b_it.remainder()) {
            *x = barrett_lane(q, barrett, u128::from(y) * u128::from(z) + u128::from(*x));
        }
    }

    /// `acc[i] ← acc[i] · c[i] mod q` lane-wise, where `c_shoup[i]` is
    /// the Shoup companion of `c[i]` — the vector-constant form used for
    /// twiddle vectors. Bit-identical to a loop of
    /// [`PrimeField::mul_shoup`] on reduced `acc`; lazy (`< 4q`) inputs
    /// reduce fully into `[0, q)` as well (the Shoup product lands in
    /// `[0, 2q)` for any `u64` input, so one correction always suffices).
    ///
    /// # Panics
    ///
    /// Panics unless the slices have equal length.
    pub fn mul_shoup_slice(&self, acc: &mut [u64], c: &[u64], c_shoup: &[u64]) {
        assert_eq!(acc.len(), c.len(), "slice kernel length mismatch");
        assert_eq!(acc.len(), c_shoup.len(), "slice kernel length mismatch");
        let q = self.q;
        let mut a_it = acc.chunks_exact_mut(LANES);
        let mut c_it = c.chunks_exact(LANES);
        let mut s_it = c_shoup.chunks_exact(LANES);
        for ((xs, cs), ss) in (&mut a_it).zip(&mut c_it).zip(&mut s_it) {
            for i in 0..LANES {
                let r = shoup_lane_lazy(q, xs[i], cs[i], ss[i]);
                xs[i] = r.min(r.wrapping_sub(q));
            }
        }
        let tail = a_it.into_remainder();
        for ((x, &cv), &sv) in tail.iter_mut().zip(c_it.remainder()).zip(s_it.remainder()) {
            let r = shoup_lane_lazy(q, *x, cv, sv);
            *x = r.min(r.wrapping_sub(q));
        }
    }

    /// `values[i] ← values[i] · c mod q` for one fixed constant `c` with
    /// Shoup companion `c_shoup` — the inverse-NTT scaling pass and
    /// scalar-broadcast form of [`PrimeField::mul_shoup_slice`]. Accepts
    /// lazy inputs and fully reduces (see `mul_shoup_slice`).
    pub fn mul_const_shoup_slice(&self, values: &mut [u64], c: u64, c_shoup: u64) {
        let q = self.q;
        let mut it = values.chunks_exact_mut(LANES);
        for xs in &mut it {
            for x in xs.iter_mut() {
                let r = shoup_lane_lazy(q, *x, c, c_shoup);
                *x = r.min(r.wrapping_sub(q));
            }
        }
        for x in it.into_remainder() {
            let r = shoup_lane_lazy(q, *x, c, c_shoup);
            *x = r.min(r.wrapping_sub(q));
        }
    }

    /// Reduces arbitrary `u64` values into `[0, q)` lane-wise.
    /// Bit-identical to a loop of [`PrimeField::reduce`].
    pub fn reduce_slice(&self, values: &mut [u64]) {
        let (q, barrett) = (self.q, self.barrett);
        let mut it = values.chunks_exact_mut(LANES);
        for xs in &mut it {
            for x in xs.iter_mut() {
                *x = barrett_lane(q, barrett, u128::from(*x));
            }
        }
        for x in it.into_remainder() {
            *x = barrett_lane(q, barrett, u128::from(*x));
        }
    }

    /// One Cooley–Tukey butterfly round segment in the lazy `[0, 4q)`
    /// representation: for each lane,
    /// `t = hi·w (mod q, in [0,2q)); lo' = lo↓ + t; hi' = lo↓ + 2q - t`
    /// with `lo↓` the input corrected once into `[0, 2q)`. Inputs and
    /// outputs are lazy; congruent mod `q` to the classical butterfly, so
    /// a final [`PrimeField::reduce_lazy_slice`] yields transforms
    /// bit-identical to the fully-reduced path.
    ///
    /// # Panics
    ///
    /// Panics unless all four slices have equal length.
    pub fn butterfly_ct_lazy_slice(&self, lo: &mut [u64], hi: &mut [u64], w: &[u64], ws: &[u64]) {
        assert_eq!(lo.len(), hi.len(), "slice kernel length mismatch");
        assert_eq!(lo.len(), w.len(), "slice kernel length mismatch");
        assert_eq!(lo.len(), ws.len(), "slice kernel length mismatch");
        let q = self.q;
        let twoq = q << 1;
        let mut lo_it = lo.chunks_exact_mut(LANES);
        let mut hi_it = hi.chunks_exact_mut(LANES);
        let mut w_it = w.chunks_exact(LANES);
        let mut s_it = ws.chunks_exact(LANES);
        for (((ls, hs), cs), ss) in (&mut lo_it).zip(&mut hi_it).zip(&mut w_it).zip(&mut s_it) {
            for i in 0..LANES {
                let x = ls[i].min(ls[i].wrapping_sub(twoq));
                let t = shoup_lane_lazy(q, hs[i], cs[i], ss[i]);
                ls[i] = x + t;
                hs[i] = x + twoq - t;
            }
        }
        let lo_tail = lo_it.into_remainder();
        let hi_tail = hi_it.into_remainder();
        let w_tail = w_it.remainder();
        let s_tail = s_it.remainder();
        for (((l, h), &cv), &sv) in
            lo_tail.iter_mut().zip(hi_tail.iter_mut()).zip(w_tail).zip(s_tail)
        {
            let x = (*l).min(l.wrapping_sub(twoq));
            let t = shoup_lane_lazy(q, *h, cv, sv);
            *l = x + t;
            *h = x + twoq - t;
        }
    }

    /// One Gentleman–Sande (decimation-in-frequency) butterfly round
    /// segment in the lazy `[0, 2q)` representation: for each lane,
    /// `lo' = (lo + hi)↓; hi' = (lo + 2q - hi)·w (mod q, in [0,2q))`
    /// with `↓` one correction into `[0, 2q)`. Preserves the `[0, 2q)`
    /// invariant, so a full set of rounds needs no input permutation and
    /// leaves values one correction away from reduced.
    ///
    /// # Panics
    ///
    /// Panics unless all four slices have equal length.
    pub fn butterfly_gs_lazy_slice(&self, lo: &mut [u64], hi: &mut [u64], w: &[u64], ws: &[u64]) {
        assert_eq!(lo.len(), hi.len(), "slice kernel length mismatch");
        assert_eq!(lo.len(), w.len(), "slice kernel length mismatch");
        assert_eq!(lo.len(), ws.len(), "slice kernel length mismatch");
        let q = self.q;
        let twoq = q << 1;
        let mut lo_it = lo.chunks_exact_mut(LANES);
        let mut hi_it = hi.chunks_exact_mut(LANES);
        let mut w_it = w.chunks_exact(LANES);
        let mut s_it = ws.chunks_exact(LANES);
        for (((ls, hs), cs), ss) in (&mut lo_it).zip(&mut hi_it).zip(&mut w_it).zip(&mut s_it) {
            for i in 0..LANES {
                let s = ls[i] + hs[i];
                let d = ls[i] + twoq - hs[i];
                ls[i] = s.min(s.wrapping_sub(twoq));
                hs[i] = shoup_lane_lazy(q, d, cs[i], ss[i]);
            }
        }
        let lo_tail = lo_it.into_remainder();
        let hi_tail = hi_it.into_remainder();
        let w_tail = w_it.remainder();
        let s_tail = s_it.remainder();
        for (((l, h), &cv), &sv) in
            lo_tail.iter_mut().zip(hi_tail.iter_mut()).zip(w_tail).zip(s_tail)
        {
            let s = *l + *h;
            let d = *l + twoq - *h;
            *l = s.min(s.wrapping_sub(twoq));
            *h = shoup_lane_lazy(q, d, cv, sv);
        }
    }

    /// Reduces lazy `[0, 4q)` representatives into `[0, q)` lane-wise —
    /// the closing pass after a run of lazy butterfly rounds.
    pub fn reduce_lazy_slice(&self, values: &mut [u64]) {
        let q = self.q;
        let twoq = q << 1;
        let mut it = values.chunks_exact_mut(LANES);
        for xs in &mut it {
            for x in xs.iter_mut() {
                let r = (*x).min(x.wrapping_sub(twoq));
                *x = r.min(r.wrapping_sub(q));
            }
        }
        for x in it.into_remainder() {
            let r = (*x).min(x.wrapping_sub(twoq));
            *x = r.min(r.wrapping_sub(q));
        }
    }

    // lint:hot-end

    /// Batch inversion in the blocked multi-chain layout: [`LANES`]
    /// independent Montgomery prefix-product chains over contiguous
    /// segments, one field inversion for the chain totals, then
    /// [`LANES`] independent backward sweeps — the same `3n + O(1)`
    /// multiplications as [`PrimeField::inv_batch`] but with eight
    /// dependency chains in flight instead of one. Inverses are unique,
    /// so the output is bit-identical to `inv_batch`.
    ///
    /// # Panics
    ///
    /// Panics if any element is zero.
    pub fn inv_batch_blocked(&self, values: &mut [u64]) {
        let n = values.len();
        if n < INV_BLOCK_MIN {
            return self.inv_batch(values);
        }
        let m = n / LANES;
        let mut prefix = vec![0u64; n];
        let mut acc = [1u64; LANES];
        let (q, barrett) = (self.q, self.barrett);
        // lint:hot-begin(batch-inverse-chains) — the forward/backward
        // multiply sweeps; the only allocation (the prefix buffer) and
        // the single field inversion sit outside the marked passes.
        for k in 0..m {
            for (j, a) in acc.iter_mut().enumerate() {
                let i = j * m + k;
                let v = values[i];
                assert!(v != 0, "attempted to batch-invert zero in Z_{q}");
                prefix[i] = *a;
                *a = barrett_lane(q, barrett, u128::from(*a) * u128::from(v));
            }
        }
        // lint:hot-end
        // The ragged tail rides on the last chain.
        for i in LANES * m..n {
            let v = values[i];
            assert!(v != 0, "attempted to batch-invert zero in Z_{q}");
            prefix[i] = acc[LANES - 1];
            acc[LANES - 1] = self.mul(acc[LANES - 1], v);
        }
        // One extended Euclid for all chains: invert the totals together.
        let mut inv_acc = acc;
        self.inv_batch(&mut inv_acc);
        for i in (LANES * m..n).rev() {
            let v = values[i];
            values[i] = self.mul(inv_acc[LANES - 1], prefix[i]);
            inv_acc[LANES - 1] = self.mul(inv_acc[LANES - 1], v);
        }
        // lint:hot-begin(batch-inverse-chains-backward)
        for k in (0..m).rev() {
            for (j, a) in inv_acc.iter_mut().enumerate() {
                let i = j * m + k;
                let v = values[i];
                values[i] = barrett_lane(q, barrett, u128::from(*a) * u128::from(prefix[i]));
                *a = barrett_lane(q, barrett, u128::from(*a) * u128::from(v));
            }
        }
        // lint:hot-end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::rand_like::{RngLike, SplitMix64};

    fn fields() -> Vec<PrimeField> {
        // Small, NTT-friendly mid-size, and the largest prime below the
        // modulus cap — the lazy-range arithmetic has the least headroom
        // at the top.
        let mut top = (1u64 << 62) - 1;
        while !crate::prime::is_prime_u64(top) {
            top -= 2;
        }
        vec![
            PrimeField::new(97).unwrap(),
            PrimeField::new(1_000_000_007).unwrap(),
            PrimeField::new((1 << 61) - 1).unwrap(),
            PrimeField::new(top).unwrap(),
        ]
    }

    /// Lengths covering the degenerate shapes the kernels must handle:
    /// empty, single lane, exactly one block, and non-power-of-two tails.
    const SHAPES: [usize; 8] = [0, 1, 7, 8, 9, 64, 100, 257];

    fn randoms(f: &PrimeField, n: usize, rng: &mut SplitMix64) -> Vec<u64> {
        (0..n).map(|_| f.sample(rng)).collect()
    }

    #[test]
    fn add_sub_mul_slices_match_scalar() {
        for f in fields() {
            let mut rng = SplitMix64::new(f.modulus());
            for n in SHAPES {
                let a = randoms(&f, n, &mut rng);
                let b = randoms(&f, n, &mut rng);
                let mut s = a.clone();
                f.add_slice(&mut s, &b);
                assert_eq!(s, a.iter().zip(&b).map(|(&x, &y)| f.add(x, y)).collect::<Vec<_>>());
                let mut d = a.clone();
                f.sub_slice(&mut d, &b);
                assert_eq!(d, a.iter().zip(&b).map(|(&x, &y)| f.sub(x, y)).collect::<Vec<_>>());
                let mut p = a.clone();
                f.mul_slice(&mut p, &b);
                assert_eq!(p, a.iter().zip(&b).map(|(&x, &y)| f.mul(x, y)).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn mul_add_slice_matches_scalar() {
        for f in fields() {
            let mut rng = SplitMix64::new(f.modulus() ^ 1);
            for n in SHAPES {
                let acc = randoms(&f, n, &mut rng);
                let a = randoms(&f, n, &mut rng);
                let b = randoms(&f, n, &mut rng);
                let mut out = acc.clone();
                f.mul_add_slice(&mut out, &a, &b);
                let expect: Vec<u64> =
                    acc.iter().zip(&a).zip(&b).map(|((&x, &y), &z)| f.mul_add(x, y, z)).collect();
                assert_eq!(out, expect, "n = {n}, q = {}", f.modulus());
            }
        }
    }

    #[test]
    fn shoup_slices_match_scalar() {
        for f in fields() {
            let mut rng = SplitMix64::new(f.modulus() ^ 2);
            for n in SHAPES {
                let a = randoms(&f, n, &mut rng);
                let c = randoms(&f, n, &mut rng);
                let cs: Vec<u64> = c.iter().map(|&x| f.shoup_precompute(x)).collect();
                let mut out = a.clone();
                f.mul_shoup_slice(&mut out, &c, &cs);
                let expect: Vec<u64> = a
                    .iter()
                    .zip(&c)
                    .zip(&cs)
                    .map(|((&x, &cv), &sv)| f.mul_shoup(x, cv, sv))
                    .collect();
                assert_eq!(out, expect, "n = {n}, q = {}", f.modulus());
                // Scalar-broadcast form against the same oracle.
                if n > 0 {
                    let k = c[0];
                    let ks = cs[0];
                    let mut out = a.clone();
                    f.mul_const_shoup_slice(&mut out, k, ks);
                    let expect: Vec<u64> = a.iter().map(|&x| f.mul_shoup(x, k, ks)).collect();
                    assert_eq!(out, expect, "const form, n = {n}");
                }
            }
        }
    }

    #[test]
    fn reduce_slice_matches_scalar_on_arbitrary_words() {
        for f in fields() {
            let mut rng = SplitMix64::new(f.modulus() ^ 3);
            for n in SHAPES {
                let raw: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
                let mut out = raw.clone();
                f.reduce_slice(&mut out);
                assert_eq!(out, raw.iter().map(|&x| f.reduce(x)).collect::<Vec<_>>());
            }
        }
    }

    /// The lazy CT butterfly lane must be congruent to the classical
    /// butterfly on every lane and stay inside the `[0, 4q)` range —
    /// checked on reduced inputs and on maximally-lazy inputs.
    #[test]
    fn lazy_ct_butterfly_is_congruent_and_bounded() {
        for f in fields() {
            let q = f.modulus();
            let mut rng = SplitMix64::new(q ^ 4);
            for n in SHAPES {
                let w = randoms(&f, n, &mut rng);
                let ws: Vec<u64> = w.iter().map(|&x| f.shoup_precompute(x)).collect();
                for lazy in [false, true] {
                    let bound = if lazy { 4 * q } else { q }; // exclusive; 4q < 2^64
                    let lo0: Vec<u64> = (0..n).map(|_| rng.next_u64() % bound).collect();
                    let hi0: Vec<u64> = (0..n).map(|_| rng.next_u64() % bound).collect();
                    let (mut lo, mut hi) = (lo0.clone(), hi0.clone());
                    f.butterfly_ct_lazy_slice(&mut lo, &mut hi, &w, &ws);
                    for i in 0..n {
                        assert!(lo[i] < 4 * q && hi[i] < 4 * q, "lazy range violated");
                        let a = lo0[i] % q; // scalar oracle on the reduced residues
                        let b = hi0[i] % q;
                        let t = f.mul_shoup(b, w[i], ws[i]);
                        assert_eq!(lo[i] % q, f.add(a, t), "lane {i} lo, q = {q}");
                        assert_eq!(hi[i] % q, f.sub(a, t), "lane {i} hi, q = {q}");
                    }
                }
            }
        }
    }

    /// The lazy GS butterfly lane must be congruent to the classical
    /// decimation-in-frequency butterfly and preserve the `[0, 2q)`
    /// invariant.
    #[test]
    fn lazy_gs_butterfly_is_congruent_and_bounded() {
        for f in fields() {
            let q = f.modulus();
            let mut rng = SplitMix64::new(q ^ 5);
            for n in SHAPES {
                let w = randoms(&f, n, &mut rng);
                let ws: Vec<u64> = w.iter().map(|&x| f.shoup_precompute(x)).collect();
                let lo0: Vec<u64> = (0..n).map(|_| rng.next_u64() % (2 * q)).collect();
                let hi0: Vec<u64> = (0..n).map(|_| rng.next_u64() % (2 * q)).collect();
                let (mut lo, mut hi) = (lo0.clone(), hi0.clone());
                f.butterfly_gs_lazy_slice(&mut lo, &mut hi, &w, &ws);
                for i in 0..n {
                    assert!(lo[i] < 2 * q && hi[i] < 2 * q, "lazy range violated");
                    let a = lo0[i] % q;
                    let b = hi0[i] % q;
                    assert_eq!(lo[i] % q, f.add(a, b), "lane {i} lo");
                    assert_eq!(hi[i] % q, f.mul(f.sub(a, b), w[i]), "lane {i} hi");
                }
            }
        }
    }

    #[test]
    fn reduce_lazy_slice_reduces_the_full_lazy_range() {
        for f in fields() {
            let q = f.modulus();
            let mut rng = SplitMix64::new(q ^ 6);
            for n in SHAPES {
                let raw: Vec<u64> = (0..n).map(|_| rng.next_u64() % (4 * q)).collect();
                let mut out = raw.clone();
                f.reduce_lazy_slice(&mut out);
                assert_eq!(out, raw.iter().map(|&x| x % q).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn blocked_batch_inversion_matches_scalar() {
        for f in fields() {
            let mut rng = SplitMix64::new(f.modulus() ^ 7);
            for n in SHAPES {
                let vals: Vec<u64> =
                    (0..n).map(|_| 1 + rng.next_u64() % (f.modulus() - 1)).collect();
                let mut blocked = vals.clone();
                f.inv_batch_blocked(&mut blocked);
                let mut scalar = vals.clone();
                f.inv_batch(&mut scalar);
                assert_eq!(blocked, scalar, "n = {n}, q = {}", f.modulus());
                for (v, inv) in vals.iter().zip(&blocked) {
                    assert_eq!(f.mul(*v, *inv), 1 % f.modulus());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "batch-invert zero")]
    fn blocked_batch_inversion_rejects_zero() {
        let f = PrimeField::new(1_000_003).unwrap();
        let mut vals = vec![1u64; 100];
        vals[63] = 0;
        f.inv_batch_blocked(&mut vals);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn slice_kernels_reject_mismatched_lengths() {
        let f = PrimeField::new(97).unwrap();
        let mut a = vec![1u64; 8];
        f.add_slice(&mut a, &[1, 2, 3]);
    }
}
