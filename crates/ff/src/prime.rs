//! Primality testing and prime search.
//!
//! The Camelot template assumes each node can compute suitable primes `q`
//! from the common input in `O*(1)` time (§1.3, citing AKS [2]; in the
//! word-RAM range deterministic Miller–Rabin is both simpler and faster).

/// Deterministic Miller–Rabin for `u64`.
///
/// Uses the 12-base set `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}`,
/// which is known to be exact for all `n < 3.3 * 10^24`, comfortably
/// covering `u64`.
///
/// # Examples
///
/// ```
/// use camelot_ff::is_prime_u64;
/// assert!(is_prime_u64((1 << 61) - 1));
/// assert!(!is_prime_u64(1_000_000_007u64 * 3));
/// ```
#[must_use]
pub fn is_prime_u64(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let d = n - 1;
    let s = d.trailing_zeros();
    let d = d >> s;
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a % n, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..s {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[inline]
fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    (u128::from(a) * u128::from(b) % u128::from(m)) as u64
}

fn pow_mod(mut a: u64, mut e: u64, m: u64) -> u64 {
    let mut acc = 1u64 % m;
    while e > 0 {
        if e & 1 == 1 {
            acc = mul_mod(acc, a, m);
        }
        a = mul_mod(a, a, m);
        e >>= 1;
    }
    acc
}

/// Smallest prime `>= n`.
///
/// # Panics
///
/// Panics if no prime `>= n` fits in `u64` (practically unreachable for the
/// moduli Camelot uses, all below `2^62`).
#[must_use]
pub fn next_prime(mut n: u64) -> u64 {
    if n <= 2 {
        return 2;
    }
    if n.is_multiple_of(2) {
        n += 1;
    }
    loop {
        if is_prime_u64(n) {
            return n;
        }
        n = n.checked_add(2).expect("prime search overflowed u64");
    }
}

/// Returns `count` distinct primes, each `>= floor`, in increasing order.
///
/// This is how the engine provisions moduli for Chinese Remainder
/// reconstruction (footnote 5 of the paper): every node derives the same
/// deterministic sequence from the same bound.
#[must_use]
pub fn primes_above(floor: u64, count: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(count);
    let mut p = floor;
    while out.len() < count {
        p = next_prime(p);
        out.push(p);
        p += 1;
    }
    out
}

/// Finds a prime `q >= floor` such that `q ≡ 1 (mod 2^k)`, enabling a
/// radix-2 NTT of length `2^k`, together with a primitive `2^k`-th root of
/// unity modulo `q`.
///
/// Returns `(q, root)`.
///
/// # Panics
///
/// Panics if `k >= 62` (no such modulus fits under `2^62`).
#[must_use]
pub fn ntt_prime(floor: u64, k: u32) -> (u64, u64) {
    assert!(k < 62, "NTT length 2^{k} exceeds the supported modulus range");
    let step = 1u64 << k;
    // Smallest multiple of 2^k with m*2^k + 1 >= floor.
    let mut m = floor.saturating_sub(1).div_ceil(step).max(1);
    loop {
        let q = m
            .checked_mul(step)
            .and_then(|v| v.checked_add(1))
            .expect("NTT prime search overflowed u64");
        assert!(q < (1 << 62), "NTT prime search left the supported range");
        if is_prime_u64(q) {
            let g = primitive_root(q);
            let root = pow_mod(g, (q - 1) >> k, q);
            return (q, root);
        }
        m += 1;
    }
}

/// Finds the smallest primitive root modulo a prime `q`.
///
/// # Panics
///
/// Panics if `q` is not prime (factorization of `q - 1` would be wrong).
#[must_use]
pub fn primitive_root(q: u64) -> u64 {
    assert!(is_prime_u64(q), "{q} is not prime");
    if q == 2 {
        return 1;
    }
    let phi = q - 1;
    let factors = factorize(phi);
    'candidate: for g in 2..q {
        for &f in &factors {
            if pow_mod(g, phi / f, q) == 1 {
                continue 'candidate;
            }
        }
        return g;
    }
    unreachable!("every prime has a primitive root")
}

/// Distinct prime factors of `n` by trial division + Pollard rho for the
/// large cofactor.
fn factorize(mut n: u64) -> Vec<u64> {
    let mut factors = Vec::new();
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47] {
        if n.is_multiple_of(p) {
            factors.push(p);
            while n.is_multiple_of(p) {
                n /= p;
            }
        }
    }
    let mut stack = vec![n];
    while let Some(m) = stack.pop() {
        if m == 1 {
            continue;
        }
        if is_prime_u64(m) {
            if !factors.contains(&m) {
                factors.push(m);
            }
            continue;
        }
        let d = pollard_rho(m);
        stack.push(d);
        stack.push(m / d);
    }
    factors.sort_unstable();
    factors
}

fn pollard_rho(n: u64) -> u64 {
    debug_assert!(n > 1 && !is_prime_u64(n));
    if n.is_multiple_of(2) {
        return 2;
    }
    let mut c = 1u64;
    loop {
        let f = |x: u64| (mul_mod(x, x, n) + c) % n;
        let (mut x, mut y, mut d) = (2u64, 2u64, 1u64);
        while d == 1 {
            x = f(x);
            y = f(f(y));
            d = gcd(x.abs_diff(y), n);
        }
        if d != n {
            return d;
        }
        c += 1;
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_classified_correctly() {
        let primes: Vec<u64> = (0..200u64).filter(|&n| is_prime_u64(n)).collect();
        let expected = [
            2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79,
            83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173,
            179, 181, 191, 193, 197, 199,
        ];
        assert_eq!(primes, expected);
    }

    #[test]
    fn known_large_primes_and_composites() {
        assert!(is_prime_u64((1 << 61) - 1));
        assert!(is_prime_u64(1_000_000_007));
        assert!(is_prime_u64(0xFFFF_FFFF_0000_0001)); // Goldilocks, 2^64-2^32+1
        assert!(!is_prime_u64(3_215_031_751)); // strong pseudoprime to bases 2,3,5,7
        assert!(!is_prime_u64((1u64 << 62) - 1));
    }

    #[test]
    fn next_prime_walks_forward() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(2), 2);
        assert_eq!(next_prime(8), 11);
        assert_eq!(next_prime(90), 97);
        assert_eq!(next_prime(1 << 20), 1_048_583);
    }

    #[test]
    fn primes_above_gives_distinct_sorted_primes() {
        let ps = primes_above(1 << 40, 5);
        assert_eq!(ps.len(), 5);
        for w in ps.windows(2) {
            assert!(w[0] < w[1]);
        }
        for &p in &ps {
            assert!(p >= 1 << 40);
            assert!(is_prime_u64(p));
        }
    }

    #[test]
    fn ntt_prime_has_requested_two_adic_root() {
        let (q, w) = ntt_prime(1 << 20, 12);
        assert!(is_prime_u64(q));
        assert_eq!((q - 1) % (1 << 12), 0);
        // w has multiplicative order exactly 2^12.
        assert_eq!(pow_mod(w, 1 << 12, q), 1);
        assert_ne!(pow_mod(w, 1 << 11, q), 1);
    }

    #[test]
    fn primitive_root_orders() {
        for q in [3u64, 5, 7, 65_537, 998_244_353] {
            let g = primitive_root(q);
            // g^((q-1)/f) != 1 for each prime factor f already checked in
            // the implementation; spot-check full order here.
            assert_eq!(pow_mod(g, q - 1, q), 1);
            assert_ne!(pow_mod(g, (q - 1) / 2, q), 1);
        }
    }

    #[test]
    fn factorize_covers_mixed_composites() {
        assert_eq!(factorize(2 * 3 * 3 * 11 * 101), vec![2, 3, 11, 101]);
        assert_eq!(factorize(1_000_000_007u64 * 2), vec![2, 1_000_000_007]);
        // semiprime with two large factors exercises Pollard rho
        assert_eq!(factorize(1_000_003u64 * 1_000_033), vec![1_000_003, 1_000_033]);
    }
}
