//! Chinese Remainder reconstruction over the integers.
//!
//! Camelot proof polynomials live in `Z_q`, but the quantities the paper
//! counts (permanents, clique counts, Tutte coefficients, …) are integers
//! that can far exceed one word. Following footnote 5 of the paper, the
//! engine presents the proof modulo several distinct primes and each
//! verifier reconstructs the integer with the CRT. [`crt_u`] reconstructs a
//! known-nonnegative value; [`crt_i`] uses the symmetric lift to recover a
//! signed value with `|x| < prod(q_i) / 2`.

use crate::fp::PrimeField;
use crate::ubig::{IBig, UBig};

/// A single residue `value mod modulus`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Residue {
    /// The prime modulus.
    pub modulus: u64,
    /// The residue in `[0, modulus)`.
    pub value: u64,
}

/// Reconstructs the unique `x` with `0 <= x < prod(moduli)` matching all
/// residues, by incremental Garner-style mixed-radix lifting.
///
/// # Panics
///
/// Panics if `residues` is empty, if moduli are not pairwise coprime
/// (duplicate primes), or if any residue is out of range.
#[must_use]
pub fn crt_u(residues: &[Residue]) -> UBig {
    assert!(!residues.is_empty(), "CRT needs at least one residue");
    let mut x = UBig::from_u64(residues[0].value % residues[0].modulus);
    let mut modulus = UBig::from_u64(residues[0].modulus);
    for r in &residues[1..] {
        assert!(r.value < r.modulus, "residue out of range");
        let f = PrimeField::new_unchecked(r.modulus);
        let m_mod_q = modulus.rem_u64(r.modulus);
        assert!(m_mod_q != 0, "CRT moduli must be pairwise coprime");
        let x_mod_q = x.rem_u64(r.modulus);
        // delta = (r - x) * modulus^{-1}  (mod q)
        let delta = f.mul(f.sub(r.value, x_mod_q), f.inv(m_mod_q));
        x = x.add(&modulus.mul_u64(delta));
        modulus = modulus.mul_u64(r.modulus);
    }
    x
}

/// Reconstructs the unique signed `x` with `|x| <= (prod(moduli) - 1) / 2`
/// matching all residues (symmetric representative).
///
/// # Panics
///
/// As [`crt_u`].
#[must_use]
pub fn crt_i(residues: &[Residue]) -> IBig {
    let x = crt_u(residues);
    let mut modulus = UBig::one();
    for r in residues {
        modulus = modulus.mul_u64(r.modulus);
    }
    // If x > (M-1)/2, the signed representative is x - M.
    let half = modulus.sub(&UBig::one()).div_rem_u64(2).0;
    if x > half {
        IBig::from_parts(true, modulus.sub(&x))
    } else {
        IBig::from_parts(false, x)
    }
}

/// Number of primes of at least `prime_bits` bits needed so their product
/// exceeds `2^value_bits` (use `value_bits + 1` for signed quantities).
#[must_use]
pub fn primes_needed(value_bits: u64, prime_bits: u64) -> usize {
    assert!(prime_bits > 0);
    usize::try_from(value_bits.div_ceil(prime_bits).max(1)).expect("prime count fits usize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::primes_above;

    #[test]
    fn reconstructs_small_values() {
        let primes = [97u64, 101, 103];
        for x in [0u64, 1, 96, 12345, 97 * 101 * 103 - 1] {
            let residues: Vec<Residue> =
                primes.iter().map(|&q| Residue { modulus: q, value: x % q }).collect();
            assert_eq!(crt_u(&residues).to_u64(), Some(x));
        }
    }

    #[test]
    fn reconstructs_beyond_u64() {
        let primes = primes_above(1 << 61, 3);
        let x: u128 = (1u128 << 100) + 987654321;
        let residues: Vec<Residue> = primes
            .iter()
            .map(|&q| Residue { modulus: q, value: (x % u128::from(q)) as u64 })
            .collect();
        assert_eq!(crt_u(&residues).to_u128(), Some(x));
    }

    #[test]
    fn signed_reconstruction_symmetric_lift() {
        let primes = [1_000_003u64, 1_000_033];
        for x in [-5i128, -1, 0, 1, 5, -123_456_789_012, 123_456_789_012] {
            let residues: Vec<Residue> = primes
                .iter()
                .map(|&q| {
                    let r = x.rem_euclid(i128::from(q)) as u64;
                    Residue { modulus: q, value: r }
                })
                .collect();
            assert_eq!(crt_i(&residues).to_i128(), Some(x), "x = {x}");
        }
    }

    #[test]
    fn single_modulus_is_identity() {
        let r = [Residue { modulus: 11, value: 7 }];
        assert_eq!(crt_u(&r).to_u64(), Some(7));
        assert_eq!(crt_i(&r).to_i64(), Some(-4)); // 7 > 5 = (11-1)/2
    }

    #[test]
    #[should_panic(expected = "pairwise coprime")]
    fn duplicate_moduli_rejected() {
        let r = [Residue { modulus: 11, value: 7 }, Residue { modulus: 11, value: 7 }];
        let _ = crt_u(&r);
    }

    #[test]
    fn primes_needed_covers_bits() {
        assert_eq!(primes_needed(61, 61), 1);
        assert_eq!(primes_needed(62, 61), 2);
        assert_eq!(primes_needed(200, 61), 4);
        assert_eq!(primes_needed(0, 61), 1);
    }
}
