//! # camelot-ff — finite fields for the Camelot framework
//!
//! Substrate crate for the reproduction of *“How Proofs are Prepared at
//! Camelot”* (Björklund–Kaski, PODC 2016). Camelot proof polynomials are
//! univariate polynomials over prime fields `Z_q`; this crate provides
//!
//! * [`PrimeField`] — word-sized prime-field arithmetic (`q < 2^62`);
//! * [`is_prime_u64`], [`next_prime`], [`primes_above`], [`ntt_prime`] —
//!   deterministic primality and prime search, so every node derives the
//!   same moduli from the common input (§1.3 of the paper);
//! * [`UBig`] / [`IBig`] — minimal arbitrary-precision integers;
//! * [`crt_u`] / [`crt_i`] — Chinese Remainder reconstruction of counts
//!   from the per-prime proofs (footnote 5 of the paper).
//!
//! ## Example
//!
//! ```
//! use camelot_ff::{crt_u, primes_above, PrimeField, Residue};
//!
//! // Reconstruct 2^80 from its residues modulo two 61-bit primes.
//! let x: u128 = 1 << 80;
//! let residues: Vec<Residue> = primes_above(1 << 61, 2)
//!     .into_iter()
//!     .map(|q| Residue { modulus: q, value: (x % u128::from(q)) as u64 })
//!     .collect();
//! assert_eq!(crt_u(&residues).to_u128(), Some(x));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod crt;
mod fp;
mod kernel;
mod prime;
mod threads;
mod ubig;

pub use crt::{crt_i, crt_u, primes_needed, Residue};
pub use fp::{
    rand_like::{RngLike, SplitMix64},
    FieldError, PrimeField, MAX_MODULUS,
};
pub use kernel::LANES;
pub use prime::{is_prime_u64, next_prime, ntt_prime, primes_above, primitive_root};
pub use threads::{set_thread_budget, thread_budget, worker_count};
pub use ubig::{IBig, UBig};
