//! Arithmetic in the prime field `Z_q` for a word-sized prime `q`.
//!
//! The Camelot framework (§1.3 of the paper) works with proof polynomials
//! over `Z_q` for primes `q` that every node can derive from the common
//! input. We represent a field as a lightweight [`PrimeField`] descriptor
//! holding the modulus; field elements are raw `u64` values in `[0, q)`.
//! All products go through `u128` widening so any `q < 2^62` is safe even
//! for sums of a few products.
//!
//! Reduction uses Barrett's method: the descriptor carries
//! `⌊2^128 / q⌋`, so [`PrimeField::mul`] / [`PrimeField::mul_add`] /
//! [`PrimeField::pow`] cost a handful of word multiplications instead of
//! a 128-bit hardware division. For loops that multiply by one fixed
//! constant many times (NTT twiddles), [`PrimeField::shoup_precompute`] /
//! [`PrimeField::mul_shoup`] shave this further to two multiplications.

use crate::prime::is_prime_u64;

/// High 128 bits of the 256-bit product `x * y`, by 64-bit limbs.
#[inline]
pub(crate) fn mulhi_u128(x: u128, y: u128) -> u128 {
    let (x0, x1) = (x & u128::from(u64::MAX), x >> 64);
    let (y0, y1) = (y & u128::from(u64::MAX), y >> 64);
    let lo = x0 * y0;
    let m1 = x1 * y0;
    let m2 = x0 * y1;
    let carry = ((lo >> 64) + (m1 & u128::from(u64::MAX)) + (m2 & u128::from(u64::MAX))) >> 64;
    x1 * y1 + (m1 >> 64) + (m2 >> 64) + carry
}

/// Maximum supported modulus (exclusive). Keeping two bits of headroom
/// allows `a + b` and the lazy accumulation patterns used in the linear
/// algebra kernels without overflow checks.
pub const MAX_MODULUS: u64 = 1 << 62;

/// A prime field `Z_q` with `q < 2^62`.
///
/// # Examples
///
/// ```
/// use camelot_ff::PrimeField;
///
/// let f = PrimeField::new(101).unwrap();
/// let a = f.add(70, 40);
/// assert_eq!(a, 9);
/// assert_eq!(f.mul(f.inv(7), 7), 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PrimeField {
    pub(crate) q: u64,
    /// Barrett reciprocal `⌊(2^128 - 1) / q⌋` (equal to `⌊2^128 / q⌋` for
    /// every odd `q`; off by one for `q = 2`, absorbed by the correction
    /// loop in [`PrimeField::barrett_reduce`]).
    pub(crate) barrett: u128,
}

/// Error returned by [`PrimeField::new`] for invalid moduli.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldError {
    /// The modulus is not a prime number.
    NotPrime(u64),
    /// The modulus is too large (`>= 2^62`).
    TooLarge(u64),
}

impl std::fmt::Display for FieldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldError::NotPrime(q) => write!(f, "modulus {q} is not prime"),
            FieldError::TooLarge(q) => write!(f, "modulus {q} exceeds 2^62"),
        }
    }
}

impl std::error::Error for FieldError {}

impl PrimeField {
    /// Creates the field `Z_q`.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::NotPrime`] if `q` is composite or `< 2`, and
    /// [`FieldError::TooLarge`] if `q >= 2^62`.
    pub fn new(q: u64) -> Result<Self, FieldError> {
        if q >= MAX_MODULUS {
            return Err(FieldError::TooLarge(q));
        }
        if !is_prime_u64(q) {
            return Err(FieldError::NotPrime(q));
        }
        Ok(Self::descriptor(q))
    }

    #[inline]
    fn descriptor(q: u64) -> Self {
        PrimeField { q, barrett: u128::MAX / u128::from(q) }
    }

    /// Creates the field without checking primality.
    ///
    /// Intended for hot paths that re-create a descriptor from a modulus
    /// already validated by [`PrimeField::new`]. Arithmetic is still
    /// well-defined for composite `q` (it is `Z/qZ`), but inverses may not
    /// exist.
    #[must_use]
    pub fn new_unchecked(q: u64) -> Self {
        debug_assert!((2..MAX_MODULUS).contains(&q));
        Self::descriptor(q)
    }

    /// The modulus `q`.
    #[inline]
    #[must_use]
    pub fn modulus(&self) -> u64 {
        self.q
    }

    // lint:hot-begin(barrett-shoup) — the scalar reduction kernels every
    // NTT butterfly, Horner loop, and tree pass bottoms out in. No `%`
    // (PR 3 replaced the `u128 %` reduction), no clones, no allocation;
    // camelot-lint enforces this region.

    /// Barrett reduction of an arbitrary `u128` into `[0, q)`.
    ///
    /// The quotient estimate `⌊a · ⌊2^128/q⌋ / 2^128⌋` undershoots the
    /// true quotient by at most 2, so the remainder lands in `[0, 3q)`
    /// (`3q < 2^64`, so the wrapping low-word arithmetic is exact) and at
    /// most two conditional subtractions finish the job.
    #[inline]
    fn barrett_reduce(&self, a: u128) -> u64 {
        let q_hat = mulhi_u128(a, self.barrett);
        let mut r = (a as u64).wrapping_sub((q_hat as u64).wrapping_mul(self.q));
        while r >= self.q {
            r -= self.q;
        }
        r
    }

    /// Reduces an arbitrary `u64` into `[0, q)`.
    #[inline]
    #[must_use]
    pub fn reduce(&self, a: u64) -> u64 {
        if a < self.q {
            a
        } else {
            self.barrett_reduce(u128::from(a))
        }
    }

    /// Reduces an `u128` into `[0, q)`.
    #[inline]
    #[must_use]
    pub fn reduce_u128(&self, a: u128) -> u64 {
        self.barrett_reduce(a)
    }

    /// Embeds a signed integer, mapping negatives to `q - |a| mod q`.
    #[inline]
    #[must_use]
    pub fn from_i64(&self, a: i64) -> u64 {
        if a >= 0 {
            self.reduce(a as u64)
        } else {
            let m = self.reduce(a.unsigned_abs());
            self.neg(m)
        }
    }

    /// `a + b mod q`. Inputs must already be reduced.
    ///
    /// Branchless: the candidate `s - q` wraps past `u64::MAX` exactly
    /// when no reduction is needed, so `min` selects the reduced value —
    /// a predictable `cmov` instead of a data-dependent branch in the
    /// butterfly and Horner hot loops.
    #[inline]
    #[must_use]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        let s = a + b;
        s.min(s.wrapping_sub(self.q))
    }

    /// `a - b mod q`. Inputs must already be reduced (branchless; see
    /// [`PrimeField::add`]).
    #[inline]
    #[must_use]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        let d = a.wrapping_sub(b);
        d.min(d.wrapping_add(self.q))
    }

    /// `-a mod q`. Input must already be reduced.
    #[inline]
    #[must_use]
    pub fn neg(&self, a: u64) -> u64 {
        debug_assert!(a < self.q);
        if a == 0 {
            0
        } else {
            self.q - a
        }
    }

    /// `a * b mod q`. Inputs must already be reduced.
    #[inline]
    #[must_use]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        self.barrett_reduce(u128::from(a) * u128::from(b))
    }

    /// Fused multiply-add `acc + a * b mod q`.
    #[inline]
    #[must_use]
    pub fn mul_add(&self, acc: u64, a: u64, b: u64) -> u64 {
        self.barrett_reduce(u128::from(a) * u128::from(b) + u128::from(acc))
    }

    /// Precomputes the Shoup companion `⌊c · 2^64 / q⌋` for a fixed
    /// multiplicand `c`, enabling [`PrimeField::mul_shoup`].
    #[inline]
    #[must_use]
    pub fn shoup_precompute(&self, c: u64) -> u64 {
        debug_assert!(c < self.q);
        ((u128::from(c) << 64) / u128::from(self.q)) as u64
    }

    /// `a * c mod q` where `c_shoup = shoup_precompute(c)`: two word
    /// multiplications, no wide reduction. This is the classic Shoup
    /// butterfly multiplication used when one operand is a loop-invariant
    /// constant (NTT twiddle factors).
    #[inline]
    #[must_use]
    pub fn mul_shoup(&self, a: u64, c: u64, c_shoup: u64) -> u64 {
        debug_assert!(a < self.q && c < self.q);
        let q_hat = ((u128::from(a) * u128::from(c_shoup)) >> 64) as u64;
        let r = a.wrapping_mul(c).wrapping_sub(q_hat.wrapping_mul(self.q));
        r.min(r.wrapping_sub(self.q))
    }

    // lint:hot-end

    /// `a^e mod q` by square-and-multiply.
    #[must_use]
    pub fn pow(&self, a: u64, mut e: u64) -> u64 {
        debug_assert!(a < self.q);
        let mut base = a;
        let mut acc = 1u64 % self.q;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0` (zero has no inverse).
    #[must_use]
    pub fn inv(&self, a: u64) -> u64 {
        assert!(a != 0, "attempted to invert zero in Z_{}", self.q);
        // Extended binary-free Euclid on signed i128 accumulators.
        let (mut r0, mut r1) = (i128::from(self.q), i128::from(a));
        let (mut s0, mut s1) = (0i128, 1i128);
        while r1 != 0 {
            let k = r0 / r1;
            (r0, r1) = (r1, r0 - k * r1);
            (s0, s1) = (s1, s0 - k * s1);
        }
        debug_assert_eq!(r0, 1, "gcd({a}, {}) != 1", self.q);
        let q = i128::from(self.q);
        (((s0 % q) + q) % q) as u64
    }

    /// Batch inversion via Montgomery's trick: one inversion plus `3n`
    /// multiplications.
    ///
    /// # Panics
    ///
    /// Panics if any element is zero.
    pub fn inv_batch(&self, values: &mut [u64]) {
        if values.is_empty() {
            return;
        }
        let mut prefix = Vec::with_capacity(values.len());
        let mut acc = 1u64;
        for &v in values.iter() {
            assert!(v != 0, "attempted to batch-invert zero in Z_{}", self.q);
            prefix.push(acc);
            acc = self.mul(acc, v);
        }
        let mut inv_acc = self.inv(acc);
        for i in (0..values.len()).rev() {
            let v = values[i];
            values[i] = self.mul(inv_acc, prefix[i]);
            inv_acc = self.mul(inv_acc, v);
        }
    }

    /// Uniformly random field element from the given generator.
    #[must_use]
    pub fn sample<R: rand_like::RngLike>(&self, rng: &mut R) -> u64 {
        // Rejection sampling for exact uniformity.
        let zone = u64::MAX - u64::MAX % self.q;
        loop {
            let v = rng.next_u64();
            if v < zone {
                return v % self.q;
            }
        }
    }
}

/// Minimal RNG abstraction so `camelot-ff` itself stays dependency-free;
/// `rand` RNGs implement it through the blanket impl in downstream crates
/// or via the adapter here.
pub mod rand_like {
    /// A source of random `u64`s.
    pub trait RngLike {
        /// Returns the next random word.
        fn next_u64(&mut self) -> u64;
    }

    /// A tiny deterministic split-mix generator, useful for tests and for
    /// reproducible fault injection.
    #[derive(Clone, Debug)]
    pub struct SplitMix64 {
        state: u64,
    }

    impl SplitMix64 {
        /// Creates a generator from a seed.
        #[must_use]
        pub fn new(seed: u64) -> Self {
            SplitMix64 { state: seed }
        }
    }

    impl RngLike for SplitMix64 {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rand_like::{RngLike, SplitMix64};
    use super::*;

    #[test]
    fn new_rejects_composites_and_large() {
        assert_eq!(PrimeField::new(1), Err(FieldError::NotPrime(1)));
        assert_eq!(PrimeField::new(91), Err(FieldError::NotPrime(91)));
        assert!(matches!(PrimeField::new(MAX_MODULUS + 1), Err(FieldError::TooLarge(_))));
        assert!(PrimeField::new(2).is_ok());
        assert!(PrimeField::new((1 << 61) - 1).is_ok()); // Mersenne prime
    }

    #[test]
    fn add_sub_neg_roundtrip() {
        let f = PrimeField::new(97).unwrap();
        for a in 0..97 {
            for b in 0..97 {
                let s = f.add(a, b);
                assert_eq!(f.sub(s, b), a);
                assert_eq!(f.add(f.neg(a), a), 0);
            }
        }
    }

    #[test]
    fn mul_matches_naive() {
        let f = PrimeField::new(1_000_000_007).unwrap();
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let a = f.sample(&mut rng);
            let b = f.sample(&mut rng);
            assert_eq!(f.mul(a, b), ((a as u128 * b as u128) % 1_000_000_007) as u64);
        }
    }

    #[test]
    fn fermat_little_theorem() {
        let f = PrimeField::new(65_537).unwrap();
        for a in [1u64, 2, 3, 12345, 65_536] {
            assert_eq!(f.pow(a, 65_536), 1);
        }
    }

    #[test]
    fn inverse_is_correct_everywhere_small() {
        let f = PrimeField::new(251).unwrap();
        for a in 1..251 {
            assert_eq!(f.mul(a, f.inv(a)), 1);
        }
    }

    #[test]
    #[should_panic(expected = "invert zero")]
    fn inverse_of_zero_panics() {
        let f = PrimeField::new(7).unwrap();
        let _ = f.inv(0);
    }

    #[test]
    fn batch_inversion_matches_scalar() {
        let f = PrimeField::new(1_000_003).unwrap();
        let mut rng = SplitMix64::new(42);
        let vals: Vec<u64> = (0..257).map(|_| 1 + f.sample(&mut rng) % (f.modulus() - 1)).collect();
        let mut batch = vals.clone();
        f.inv_batch(&mut batch);
        for (v, b) in vals.iter().zip(&batch) {
            assert_eq!(f.inv(*v), *b);
        }
    }

    /// Exhaustive cross-check of the Barrett reduction paths against
    /// hardware division, over every residue pair of several small primes
    /// (including the edge modulus 2, where the stored reciprocal is off
    /// by one and must be absorbed by the correction loop).
    #[test]
    fn barrett_matches_hardware_division_exhaustive_small() {
        for q in [2u64, 3, 5, 7, 97, 251] {
            let f = PrimeField::new(q).unwrap();
            for a in 0..q {
                for b in 0..q {
                    assert_eq!(f.mul(a, b), a * b % q, "mul {a}*{b} mod {q}");
                    let shoup = f.shoup_precompute(b);
                    assert_eq!(f.mul_shoup(a, b, shoup), a * b % q, "shoup {a}*{b} mod {q}");
                    assert_eq!(f.mul_add(b, a, a), (a * a + b) % q, "mul_add mod {q}");
                }
                assert_eq!(f.reduce(a + q), a, "reduce mod {q}");
            }
        }
    }

    /// Randomized cross-check against `u128` hardware division for large
    /// primes, including the largest prime below the 2^62 modulus cap.
    #[test]
    fn barrett_matches_hardware_division_random_large() {
        let top = {
            let mut q = (1u64 << 62) - 1;
            while !is_prime_u64(q) {
                q -= 2;
            }
            q
        };
        let mut rng = SplitMix64::new(99);
        let mid = {
            let mut q = (1u64 << 52) + 1;
            while !is_prime_u64(q) {
                q += 2;
            }
            q
        };
        for q in [(1u64 << 61) - 1, 1_000_000_007, mid, top] {
            let f = PrimeField::new(q).unwrap();
            let wq = u128::from(q);
            for _ in 0..2000 {
                let a = f.sample(&mut rng);
                let b = f.sample(&mut rng);
                assert_eq!(f.mul(a, b), (u128::from(a) * u128::from(b) % wq) as u64);
                let shoup = f.shoup_precompute(b);
                assert_eq!(f.mul_shoup(a, b, shoup), (u128::from(a) * u128::from(b) % wq) as u64);
                assert_eq!(
                    f.mul_add(b, a, a),
                    ((u128::from(a) * u128::from(a) + u128::from(b)) % wq) as u64
                );
                let wide = u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64());
                assert_eq!(f.reduce_u128(wide), (wide % wq) as u64);
                assert_eq!(f.reduce(a.wrapping_mul(b)), a.wrapping_mul(b) % q);
            }
            // pow against iterated naive multiplication.
            let base = f.sample(&mut rng);
            let mut acc = 1u64;
            for e in 0..40u64 {
                assert_eq!(f.pow(base, e), acc, "pow e={e} mod {q}");
                acc = (u128::from(acc) * u128::from(base) % wq) as u64;
            }
        }
    }

    #[test]
    fn from_i64_handles_negatives() {
        let f = PrimeField::new(101).unwrap();
        assert_eq!(f.from_i64(-1), 100);
        assert_eq!(f.from_i64(-101), 0);
        assert_eq!(f.from_i64(-202), 0);
        assert_eq!(f.from_i64(5), 5);
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let f = PrimeField::new((1 << 61) - 1).unwrap();
        let mut rng = SplitMix64::new(3);
        for _ in 0..200 {
            let acc = f.sample(&mut rng);
            let a = f.sample(&mut rng);
            let b = f.sample(&mut rng);
            assert_eq!(f.mul_add(acc, a, b), f.add(acc, f.mul(a, b)));
        }
    }

    #[test]
    fn sampling_is_in_range() {
        let f = PrimeField::new(11).unwrap();
        let mut rng = SplitMix64::new(1);
        let mut seen = [false; 11];
        for _ in 0..500 {
            let v = f.sample(&mut rng);
            assert!(v < 11);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }
}
