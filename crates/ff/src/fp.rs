//! Arithmetic in the prime field `Z_q` for a word-sized prime `q`.
//!
//! The Camelot framework (§1.3 of the paper) works with proof polynomials
//! over `Z_q` for primes `q` that every node can derive from the common
//! input. We represent a field as a lightweight [`PrimeField`] descriptor
//! holding the modulus; field elements are raw `u64` values in `[0, q)`.
//! All products go through `u128` widening so any `q < 2^62` is safe even
//! for sums of a few products.

use crate::prime::is_prime_u64;

/// Maximum supported modulus (exclusive). Keeping two bits of headroom
/// allows `a + b` and the lazy accumulation patterns used in the linear
/// algebra kernels without overflow checks.
pub const MAX_MODULUS: u64 = 1 << 62;

/// A prime field `Z_q` with `q < 2^62`.
///
/// # Examples
///
/// ```
/// use camelot_ff::PrimeField;
///
/// let f = PrimeField::new(101).unwrap();
/// let a = f.add(70, 40);
/// assert_eq!(a, 9);
/// assert_eq!(f.mul(f.inv(7), 7), 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PrimeField {
    q: u64,
}

/// Error returned by [`PrimeField::new`] for invalid moduli.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldError {
    /// The modulus is not a prime number.
    NotPrime(u64),
    /// The modulus is too large (`>= 2^62`).
    TooLarge(u64),
}

impl std::fmt::Display for FieldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldError::NotPrime(q) => write!(f, "modulus {q} is not prime"),
            FieldError::TooLarge(q) => write!(f, "modulus {q} exceeds 2^62"),
        }
    }
}

impl std::error::Error for FieldError {}

impl PrimeField {
    /// Creates the field `Z_q`.
    ///
    /// # Errors
    ///
    /// Returns [`FieldError::NotPrime`] if `q` is composite or `< 2`, and
    /// [`FieldError::TooLarge`] if `q >= 2^62`.
    pub fn new(q: u64) -> Result<Self, FieldError> {
        if q >= MAX_MODULUS {
            return Err(FieldError::TooLarge(q));
        }
        if !is_prime_u64(q) {
            return Err(FieldError::NotPrime(q));
        }
        Ok(PrimeField { q })
    }

    /// Creates the field without checking primality.
    ///
    /// Intended for hot paths that re-create a descriptor from a modulus
    /// already validated by [`PrimeField::new`]. Arithmetic is still
    /// well-defined for composite `q` (it is `Z/qZ`), but inverses may not
    /// exist.
    #[must_use]
    pub fn new_unchecked(q: u64) -> Self {
        debug_assert!((2..MAX_MODULUS).contains(&q));
        PrimeField { q }
    }

    /// The modulus `q`.
    #[inline]
    #[must_use]
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// Reduces an arbitrary `u64` into `[0, q)`.
    #[inline]
    #[must_use]
    pub fn reduce(&self, a: u64) -> u64 {
        a % self.q
    }

    /// Reduces an `u128` into `[0, q)`.
    #[inline]
    #[must_use]
    pub fn reduce_u128(&self, a: u128) -> u64 {
        (a % u128::from(self.q)) as u64
    }

    /// Embeds a signed integer, mapping negatives to `q - |a| mod q`.
    #[inline]
    #[must_use]
    pub fn from_i64(&self, a: i64) -> u64 {
        if a >= 0 {
            self.reduce(a as u64)
        } else {
            let m = self.reduce(a.unsigned_abs());
            self.neg(m)
        }
    }

    /// `a + b mod q`. Inputs must already be reduced.
    #[inline]
    #[must_use]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        let s = a + b;
        if s >= self.q {
            s - self.q
        } else {
            s
        }
    }

    /// `a - b mod q`. Inputs must already be reduced.
    #[inline]
    #[must_use]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        if a >= b {
            a - b
        } else {
            a + self.q - b
        }
    }

    /// `-a mod q`. Input must already be reduced.
    #[inline]
    #[must_use]
    pub fn neg(&self, a: u64) -> u64 {
        debug_assert!(a < self.q);
        if a == 0 {
            0
        } else {
            self.q - a
        }
    }

    /// `a * b mod q`. Inputs must already be reduced.
    #[inline]
    #[must_use]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        (u128::from(a) * u128::from(b) % u128::from(self.q)) as u64
    }

    /// Fused multiply-add `acc + a * b mod q`.
    #[inline]
    #[must_use]
    pub fn mul_add(&self, acc: u64, a: u64, b: u64) -> u64 {
        ((u128::from(a) * u128::from(b) + u128::from(acc)) % u128::from(self.q)) as u64
    }

    /// `a^e mod q` by square-and-multiply.
    #[must_use]
    pub fn pow(&self, a: u64, mut e: u64) -> u64 {
        debug_assert!(a < self.q);
        let mut base = a;
        let mut acc = 1u64 % self.q;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0` (zero has no inverse).
    #[must_use]
    pub fn inv(&self, a: u64) -> u64 {
        assert!(a != 0, "attempted to invert zero in Z_{}", self.q);
        // Extended binary-free Euclid on signed i128 accumulators.
        let (mut r0, mut r1) = (i128::from(self.q), i128::from(a));
        let (mut s0, mut s1) = (0i128, 1i128);
        while r1 != 0 {
            let k = r0 / r1;
            (r0, r1) = (r1, r0 - k * r1);
            (s0, s1) = (s1, s0 - k * s1);
        }
        debug_assert_eq!(r0, 1, "gcd({a}, {}) != 1", self.q);
        let q = i128::from(self.q);
        (((s0 % q) + q) % q) as u64
    }

    /// Batch inversion via Montgomery's trick: one inversion plus `3n`
    /// multiplications.
    ///
    /// # Panics
    ///
    /// Panics if any element is zero.
    pub fn inv_batch(&self, values: &mut [u64]) {
        if values.is_empty() {
            return;
        }
        let mut prefix = Vec::with_capacity(values.len());
        let mut acc = 1u64;
        for &v in values.iter() {
            assert!(v != 0, "attempted to batch-invert zero in Z_{}", self.q);
            prefix.push(acc);
            acc = self.mul(acc, v);
        }
        let mut inv_acc = self.inv(acc);
        for i in (0..values.len()).rev() {
            let v = values[i];
            values[i] = self.mul(inv_acc, prefix[i]);
            inv_acc = self.mul(inv_acc, v);
        }
    }

    /// Uniformly random field element from the given generator.
    #[must_use]
    pub fn sample<R: rand_like::RngLike>(&self, rng: &mut R) -> u64 {
        // Rejection sampling for exact uniformity.
        let zone = u64::MAX - u64::MAX % self.q;
        loop {
            let v = rng.next_u64();
            if v < zone {
                return v % self.q;
            }
        }
    }
}

/// Minimal RNG abstraction so `camelot-ff` itself stays dependency-free;
/// `rand` RNGs implement it through the blanket impl in downstream crates
/// or via the adapter here.
pub mod rand_like {
    /// A source of random `u64`s.
    pub trait RngLike {
        /// Returns the next random word.
        fn next_u64(&mut self) -> u64;
    }

    /// A tiny deterministic split-mix generator, useful for tests and for
    /// reproducible fault injection.
    #[derive(Clone, Debug)]
    pub struct SplitMix64 {
        state: u64,
    }

    impl SplitMix64 {
        /// Creates a generator from a seed.
        #[must_use]
        pub fn new(seed: u64) -> Self {
            SplitMix64 { state: seed }
        }
    }

    impl RngLike for SplitMix64 {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rand_like::SplitMix64;
    use super::*;

    #[test]
    fn new_rejects_composites_and_large() {
        assert_eq!(PrimeField::new(1), Err(FieldError::NotPrime(1)));
        assert_eq!(PrimeField::new(91), Err(FieldError::NotPrime(91)));
        assert!(matches!(PrimeField::new(MAX_MODULUS + 1), Err(FieldError::TooLarge(_))));
        assert!(PrimeField::new(2).is_ok());
        assert!(PrimeField::new((1 << 61) - 1).is_ok()); // Mersenne prime
    }

    #[test]
    fn add_sub_neg_roundtrip() {
        let f = PrimeField::new(97).unwrap();
        for a in 0..97 {
            for b in 0..97 {
                let s = f.add(a, b);
                assert_eq!(f.sub(s, b), a);
                assert_eq!(f.add(f.neg(a), a), 0);
            }
        }
    }

    #[test]
    fn mul_matches_naive() {
        let f = PrimeField::new(1_000_000_007).unwrap();
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let a = f.sample(&mut rng);
            let b = f.sample(&mut rng);
            assert_eq!(f.mul(a, b), ((a as u128 * b as u128) % 1_000_000_007) as u64);
        }
    }

    #[test]
    fn fermat_little_theorem() {
        let f = PrimeField::new(65_537).unwrap();
        for a in [1u64, 2, 3, 12345, 65_536] {
            assert_eq!(f.pow(a, 65_536), 1);
        }
    }

    #[test]
    fn inverse_is_correct_everywhere_small() {
        let f = PrimeField::new(251).unwrap();
        for a in 1..251 {
            assert_eq!(f.mul(a, f.inv(a)), 1);
        }
    }

    #[test]
    #[should_panic(expected = "invert zero")]
    fn inverse_of_zero_panics() {
        let f = PrimeField::new(7).unwrap();
        let _ = f.inv(0);
    }

    #[test]
    fn batch_inversion_matches_scalar() {
        let f = PrimeField::new(1_000_003).unwrap();
        let mut rng = SplitMix64::new(42);
        let vals: Vec<u64> = (0..257).map(|_| 1 + f.sample(&mut rng) % (f.modulus() - 1)).collect();
        let mut batch = vals.clone();
        f.inv_batch(&mut batch);
        for (v, b) in vals.iter().zip(&batch) {
            assert_eq!(f.inv(*v), *b);
        }
    }

    #[test]
    fn from_i64_handles_negatives() {
        let f = PrimeField::new(101).unwrap();
        assert_eq!(f.from_i64(-1), 100);
        assert_eq!(f.from_i64(-101), 0);
        assert_eq!(f.from_i64(-202), 0);
        assert_eq!(f.from_i64(5), 5);
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let f = PrimeField::new((1 << 61) - 1).unwrap();
        let mut rng = SplitMix64::new(3);
        for _ in 0..200 {
            let acc = f.sample(&mut rng);
            let a = f.sample(&mut rng);
            let b = f.sample(&mut rng);
            assert_eq!(f.mul_add(acc, a, b), f.add(acc, f.mul(a, b)));
        }
    }

    #[test]
    fn sampling_is_in_range() {
        let f = PrimeField::new(11).unwrap();
        let mut rng = SplitMix64::new(1);
        let mut seen = [false; 11];
        for _ in 0..500 {
            let v = f.sample(&mut rng);
            assert!(v < 11);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }
}
