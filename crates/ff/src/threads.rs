//! Process-wide thread budget for the data-parallel kernels.
//!
//! Every layer that splits work across OS threads — the threaded NTT and
//! subproduct-tree passes in `camelot-poly`, the in-process parallel
//! transport in `camelot-cluster`, the engine's batched decodes — derives
//! its worker count from the single budget held here, so one environment
//! variable governs the whole stack. The cell follows the crossover-cell
//! idiom of `camelot-poly::hgcd`: initialized once from `CAMELOT_THREADS`
//! (falling back to [`std::thread::available_parallelism`]) and
//! overridable at runtime for benchmark fitting and tests.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

fn budget_cell() -> &'static AtomicUsize {
    static CELL: OnceLock<AtomicUsize> = OnceLock::new();
    CELL.get_or_init(|| {
        let from_env = std::env::var("CAMELOT_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0);
        let detected = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        AtomicUsize::new(from_env.unwrap_or(detected))
    })
}

/// The process-wide thread budget: the maximum number of OS threads any
/// single data-parallel pass may occupy. Initialized from the
/// `CAMELOT_THREADS` environment variable when set (and positive),
/// otherwise from [`std::thread::available_parallelism`]; never zero.
#[must_use]
pub fn thread_budget() -> usize {
    budget_cell().load(Ordering::Relaxed).max(1)
}

/// Overrides the thread budget process-wide (benchmark fitting, tests,
/// and the CI threading matrix). Clamped to at least 1.
pub fn set_thread_budget(n: usize) {
    budget_cell().store(n.max(1), Ordering::Relaxed);
}

/// Worker count for a pass with `tasks` independent units of work: the
/// thread budget capped by the task count, and at least 1.
#[must_use]
pub fn worker_count(tasks: usize) -> usize {
    thread_budget().min(tasks).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_positive_and_overridable() {
        let original = thread_budget();
        assert!(original >= 1);
        set_thread_budget(3);
        assert_eq!(thread_budget(), 3);
        assert_eq!(worker_count(2), 2);
        assert_eq!(worker_count(100), 3);
        set_thread_budget(0); // clamps to 1
        assert_eq!(thread_budget(), 1);
        assert_eq!(worker_count(0), 1);
        set_thread_budget(original);
    }
}
