//! Minimal arbitrary-precision integers.
//!
//! Camelot proofs are reconstructed over the integers via the Chinese
//! Remainder Theorem (footnote 5 of the paper). The counts involved — e.g.
//! the permanent of an `n x n` matrix, bounded by `n! * max|a_ij|^n` — do
//! not fit machine words, and the sanctioned offline dependency set has no
//! bignum crate, so we implement a small, well-tested one: unsigned
//! [`UBig`] on base-`2^64` limbs and signed [`IBig`] on top.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer (little-endian `u64` limbs,
/// no trailing zero limbs; zero is the empty limb vector).
#[derive(Clone, Debug, PartialEq, Eq, Default, Hash)]
pub struct UBig {
    limbs: Vec<u64>,
}

impl UBig {
    /// Zero.
    #[must_use]
    pub fn zero() -> Self {
        UBig { limbs: Vec::new() }
    }

    /// One.
    #[must_use]
    pub fn one() -> Self {
        UBig { limbs: vec![1] }
    }

    /// Creates from a `u64`.
    #[must_use]
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            UBig { limbs: vec![v] }
        }
    }

    /// Creates from a `u128`.
    #[must_use]
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut out = UBig { limbs: vec![lo, hi] };
        out.normalize();
        out
    }

    /// True if the value is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits (0 for zero).
    #[must_use]
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(top) => (self.limbs.len() as u64 - 1) * 64 + (64 - u64::from(top.leading_zeros())),
        }
    }

    /// Converts to `u64` if it fits.
    #[must_use]
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if it fits.
    #[must_use]
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(u128::from(self.limbs[0])),
            2 => Some(u128::from(self.limbs[0]) | (u128::from(self.limbs[1]) << 64)),
            _ => None,
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    #[must_use]
    pub fn add(&self, other: &UBig) -> UBig {
        let (a, b) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry = 0u64;
        for (i, &ai) in a.iter().enumerate() {
            let bi = b.get(i).copied().unwrap_or(0);
            let (s1, c1) = ai.overflowing_add(bi);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut r = UBig { limbs: out };
        r.normalize();
        r
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    #[must_use]
    pub fn sub(&self, other: &UBig) -> UBig {
        assert!(self >= other, "UBig::sub underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let bi = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(bi);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0);
        let mut r = UBig { limbs: out };
        r.normalize();
        r
    }

    /// `self * other` (schoolbook; operand sizes here are tiny — a few
    /// dozen limbs at most).
    #[must_use]
    pub fn mul(&self, other: &UBig) -> UBig {
        if self.is_zero() || other.is_zero() {
            return UBig::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = u128::from(out[i + j]) + u128::from(a) * u128::from(b) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = u128::from(out[k]) + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut r = UBig { limbs: out };
        r.normalize();
        r
    }

    /// `self * m` for a word multiplier.
    #[must_use]
    pub fn mul_u64(&self, m: u64) -> UBig {
        self.mul(&UBig::from_u64(m))
    }

    /// `(self / d, self % d)` for a word divisor.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[must_use]
    pub fn div_rem_u64(&self, d: u64) -> (UBig, u64) {
        assert!(d != 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | u128::from(self.limbs[i]);
            out[i] = (cur / u128::from(d)) as u64;
            rem = cur % u128::from(d);
        }
        let mut q = UBig { limbs: out };
        q.normalize();
        (q, rem as u64)
    }

    /// `self mod d` for a word divisor.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[must_use]
    pub fn rem_u64(&self, d: u64) -> u64 {
        self.div_rem_u64(d).1
    }
}

impl PartialOrd for UBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for UBig {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => self.limbs.iter().rev().cmp(other.limbs.iter().rev()),
            ord => ord,
        }
    }
}

impl fmt::Display for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(10_000_000_000_000_000_000);
            digits.push(r);
            cur = q;
        }
        let mut s = String::new();
        for (i, d) in digits.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&d.to_string());
            } else {
                s.push_str(&format!("{d:019}"));
            }
        }
        write!(f, "{s}")
    }
}

impl From<u64> for UBig {
    fn from(v: u64) -> Self {
        UBig::from_u64(v)
    }
}

impl From<u128> for UBig {
    fn from(v: u128) -> Self {
        UBig::from_u128(v)
    }
}

/// An arbitrary-precision signed integer (sign–magnitude over [`UBig`]).
#[derive(Clone, Debug, PartialEq, Eq, Default, Hash)]
pub struct IBig {
    /// True for strictly negative values; zero is always non-negative.
    negative: bool,
    magnitude: UBig,
}

impl IBig {
    /// Zero.
    #[must_use]
    pub fn zero() -> Self {
        IBig { negative: false, magnitude: UBig::zero() }
    }

    /// Creates from sign and magnitude (zero magnitude forces sign +).
    #[must_use]
    pub fn from_parts(negative: bool, magnitude: UBig) -> Self {
        let negative = negative && !magnitude.is_zero();
        IBig { negative, magnitude }
    }

    /// Creates from an `i64`.
    #[must_use]
    pub fn from_i64(v: i64) -> Self {
        IBig::from_parts(v < 0, UBig::from_u64(v.unsigned_abs()))
    }

    /// Creates from an `i128`.
    #[must_use]
    pub fn from_i128(v: i128) -> Self {
        IBig::from_parts(v < 0, UBig::from_u128(v.unsigned_abs()))
    }

    /// True if zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.magnitude.is_zero()
    }

    /// True if strictly negative.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.negative
    }

    /// Magnitude.
    #[must_use]
    pub fn magnitude(&self) -> &UBig {
        &self.magnitude
    }

    /// Converts to `i64` if it fits.
    #[must_use]
    pub fn to_i64(&self) -> Option<i64> {
        let m = self.magnitude.to_u64()?;
        if self.negative {
            if m <= 1 << 63 {
                Some((m as i64).wrapping_neg())
            } else {
                None
            }
        } else {
            i64::try_from(m).ok()
        }
    }

    /// Converts to `i128` if it fits.
    #[must_use]
    pub fn to_i128(&self) -> Option<i128> {
        let m = self.magnitude.to_u128()?;
        if self.negative {
            if m <= 1 << 127 {
                Some((m as i128).wrapping_neg())
            } else {
                None
            }
        } else {
            i128::try_from(m).ok()
        }
    }

    /// `-self`.
    #[must_use]
    pub fn neg(&self) -> IBig {
        IBig::from_parts(!self.negative, self.magnitude.clone())
    }

    /// `self + other`.
    #[must_use]
    pub fn add(&self, other: &IBig) -> IBig {
        if self.negative == other.negative {
            IBig::from_parts(self.negative, self.magnitude.add(&other.magnitude))
        } else if self.magnitude >= other.magnitude {
            IBig::from_parts(self.negative, self.magnitude.sub(&other.magnitude))
        } else {
            IBig::from_parts(other.negative, other.magnitude.sub(&self.magnitude))
        }
    }

    /// `self - other`.
    #[must_use]
    pub fn sub(&self, other: &IBig) -> IBig {
        self.add(&other.neg())
    }

    /// `self * other`.
    #[must_use]
    pub fn mul(&self, other: &IBig) -> IBig {
        IBig::from_parts(self.negative != other.negative, self.magnitude.mul(&other.magnitude))
    }

    /// `self * m` for a word multiplier.
    #[must_use]
    pub fn mul_i64(&self, m: i64) -> IBig {
        self.mul(&IBig::from_i64(m))
    }

    /// Exact division by a word divisor.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0` or the division is not exact.
    #[must_use]
    pub fn div_exact_u64(&self, d: u64) -> IBig {
        let (q, r) = self.magnitude.div_rem_u64(d);
        assert_eq!(r, 0, "IBig::div_exact_u64: non-exact division by {d}");
        IBig::from_parts(self.negative, q)
    }

    /// Representative of `self mod q` in `[0, q)`.
    #[must_use]
    pub fn rem_euclid_u64(&self, q: u64) -> u64 {
        let r = self.magnitude.rem_u64(q);
        if self.negative && r != 0 {
            q - r
        } else {
            r
        }
    }
}

impl PartialOrd for IBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IBig {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.negative, other.negative) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => self.magnitude.cmp(&other.magnitude),
            (true, true) => other.magnitude.cmp(&self.magnitude),
        }
    }
}

impl fmt::Display for IBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negative {
            write!(f, "-{}", self.magnitude)
        } else {
            write!(f, "{}", self.magnitude)
        }
    }
}

impl From<i64> for IBig {
    fn from(v: i64) -> Self {
        IBig::from_i64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> UBig {
        UBig::from_u128(v)
    }

    #[test]
    fn add_sub_roundtrip_u128_range() {
        let a = big(u128::MAX - 3);
        let b = big(12345678901234567890);
        let s = a.add(&b);
        assert_eq!(s.sub(&b), a);
        assert_eq!(s.sub(&a), b);
        assert!(s > a);
    }

    #[test]
    fn mul_matches_u128_when_small() {
        let a = big(0xDEAD_BEEF_CAFE);
        let b = big(0x1234_5678_9ABC);
        assert_eq!(a.mul(&b).to_u128(), Some(0xDEAD_BEEF_CAFEu128 * 0x1234_5678_9ABC));
    }

    #[test]
    fn factorial_100_is_correct() {
        let mut f = UBig::one();
        for i in 1..=100u64 {
            f = f.mul_u64(i);
        }
        assert_eq!(
            f.to_string(),
            "93326215443944152681699238856266700490715968264381621468592963895217599993229915\
             608941463976156518286253697920827223758251185210916864000000000000000000000000"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn div_rem_u64_reconstructs() {
        let mut f = UBig::one();
        for i in 1..=40u64 {
            f = f.mul_u64(i);
        }
        let (q, r) = f.div_rem_u64(1_000_000_007);
        assert_eq!(q.mul_u64(1_000_000_007).add(&UBig::from_u64(r)), f);
    }

    #[test]
    fn display_zero_and_carries() {
        assert_eq!(UBig::zero().to_string(), "0");
        assert_eq!(big(10u128.pow(19)).to_string(), "10000000000000000000");
        assert_eq!(big(10u128.pow(38)).to_string(), format!("1{}", "0".repeat(38)));
    }

    #[test]
    fn bits_counts_significant_bits() {
        assert_eq!(UBig::zero().bits(), 0);
        assert_eq!(UBig::one().bits(), 1);
        assert_eq!(big(1u128 << 64).bits(), 65);
        assert_eq!(big((1u128 << 100) - 1).bits(), 100);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(big(5) < big(6));
        assert!(big(1u128 << 64) > big(u64::MAX as u128));
        assert_eq!(big(7).cmp(&big(7)), Ordering::Equal);
    }

    #[test]
    fn ibig_signed_arithmetic() {
        let a = IBig::from_i64(-5);
        let b = IBig::from_i64(3);
        assert_eq!(a.add(&b).to_i64(), Some(-2));
        assert_eq!(a.sub(&b).to_i64(), Some(-8));
        assert_eq!(a.mul(&b).to_i64(), Some(-15));
        assert_eq!(a.mul(&a).to_i64(), Some(25));
        assert_eq!(a.neg().to_i64(), Some(5));
        assert!(a < b);
        assert!(IBig::from_i64(-10) < IBig::from_i64(-9));
    }

    #[test]
    fn ibig_zero_is_canonical() {
        let z = IBig::from_i64(3).sub(&IBig::from_i64(3));
        assert!(z.is_zero());
        assert!(!z.is_negative());
        assert_eq!(z, IBig::zero());
        assert_eq!(z.to_string(), "0");
    }

    #[test]
    fn ibig_rem_euclid() {
        assert_eq!(IBig::from_i64(-1).rem_euclid_u64(7), 6);
        assert_eq!(IBig::from_i64(-14).rem_euclid_u64(7), 0);
        assert_eq!(IBig::from_i64(15).rem_euclid_u64(7), 1);
    }

    #[test]
    fn ibig_div_exact() {
        let v = IBig::from_i64(-42);
        assert_eq!(v.div_exact_u64(6).to_i64(), Some(-7));
    }

    #[test]
    #[should_panic(expected = "non-exact")]
    fn ibig_div_exact_panics_on_remainder() {
        let _ = IBig::from_i64(-43).div_exact_u64(6);
    }

    #[test]
    fn i64_boundaries() {
        assert_eq!(IBig::from_i64(i64::MIN).to_i64(), Some(i64::MIN));
        assert_eq!(IBig::from_i64(i64::MAX).to_i64(), Some(i64::MAX));
        let too_big = IBig::from_parts(false, big(1u128 << 63));
        assert_eq!(too_big.to_i64(), None);
        assert_eq!(too_big.to_i128(), Some(1i128 << 63));
    }
}
