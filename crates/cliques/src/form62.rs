//! The `(6 2)`-linear form and its evaluation circuits (§4 of the paper).
//!
//! For matrices `χ^{(s,t)}` (one per pair `1 ≤ s < t ≤ 6`; a single
//! matrix used 15 times in the clique application, 15 distinct ones in
//! the 2-CSP application of Appendix B), the form is
//!
//! ```text
//! X = Σ_{a,b,c,d,e,f} Π_{1≤s<t≤6} χ^{(s,t)}_{v_s v_t},
//! (v_1..v_6) = (a,b,c,d,e,f).
//! ```
//!
//! Three evaluators are provided:
//!
//! * [`Form62::eval_naive`] — the `O(N^6)` definition (ground truth);
//! * [`Form62::eval_nesetril_poljak`] — the `O(N^{2ω})`-time,
//!   **`O(N^4)`-space** baseline of Nešetřil–Poljak (§4.1);
//! * [`Form62::eval_circuit`] — the paper's new `O(N^{2ω})`-time,
//!   **`O(N^2)`-space** circuit (Theorem 13), which additionally
//!   parallelizes over the `R` rank-one terms and extends to a proof
//!   polynomial ([`Form62::eval_proof_at`], §5.2–5.3).

use camelot_ff::PrimeField;
use camelot_linalg::{yates, MatMulTensor, Matrix};
use camelot_poly::lagrange_basis_at;

/// Flat index of the pair `(s, t)`, `1 <= s < t <= 6`, in the fixed order
/// `(1,2), (1,3), …, (5,6)`.
///
/// # Panics
///
/// Panics unless `1 <= s < t <= 6`.
#[must_use]
pub fn pair_index(s: usize, t: usize) -> usize {
    assert!(1 <= s && s < t && t <= 6, "need 1 <= s < t <= 6");
    let mut idx = 0;
    for ss in 1..6 {
        for tt in ss + 1..=6 {
            if (ss, tt) == (s, t) {
                return idx;
            }
            idx += 1;
        }
    }
    unreachable!()
}

/// A `(6 2)`-linear form instance: 15 square matrices of equal size.
#[derive(Clone, Debug)]
pub struct Form62 {
    size: usize,
    mats: Vec<Matrix>,
}

/// Space accounting for the evaluation circuits (in field elements,
/// counting the inputs and the peak simultaneous workspace).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpaceStats {
    /// Peak number of simultaneously live field elements.
    pub peak_field_elements: usize,
}

impl Form62 {
    /// Builds a form with 15 distinct matrices, indexed by
    /// [`pair_index`].
    ///
    /// # Panics
    ///
    /// Panics unless exactly 15 square matrices of equal size are given.
    #[must_use]
    pub fn new(mats: Vec<Matrix>) -> Self {
        assert_eq!(mats.len(), 15, "a (6 2)-linear form needs 15 matrices");
        let size = mats[0].rows();
        for m in &mats {
            assert!(m.rows() == size && m.cols() == size, "matrices must be square, equal size");
        }
        Form62 { size, mats }
    }

    /// Builds the uniform form (all 15 slots the same matrix) — the
    /// clique-counting case.
    #[must_use]
    pub fn uniform(chi: Matrix) -> Self {
        assert_eq!(chi.rows(), chi.cols(), "χ must be square");
        Form62 { size: chi.rows(), mats: vec![chi; 15] }
    }

    /// Matrix size `N`.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    fn chi(&self, s: usize, t: usize) -> &Matrix {
        &self.mats[pair_index(s, t)]
    }

    /// Direct `O(N^6)` evaluation of the form (ground truth for tests).
    #[must_use]
    pub fn eval_naive(&self, field: &PrimeField) -> u64 {
        let n = self.size;
        let mut total = 0u64;
        let v = |s: usize, t: usize, i: usize, j: usize| self.chi(s, t).get(i, j);
        for a in 0..n {
            for b in 0..n {
                let x_ab = v(1, 2, a, b);
                if x_ab == 0 {
                    continue;
                }
                for c in 0..n {
                    let x_abc = field.mul(x_ab, field.mul(v(1, 3, a, c), v(2, 3, b, c)));
                    if x_abc == 0 {
                        continue;
                    }
                    for d in 0..n {
                        let x_d = field.mul(v(1, 4, a, d), field.mul(v(2, 4, b, d), v(3, 4, c, d)));
                        if x_d == 0 {
                            continue;
                        }
                        for e in 0..n {
                            let x_e = field.mul(
                                v(4, 5, d, e),
                                field.mul(v(1, 5, a, e), field.mul(v(2, 5, b, e), v(3, 5, c, e))),
                            );
                            if x_e == 0 {
                                continue;
                            }
                            let pre = field.mul(x_abc, field.mul(x_d, x_e));
                            for f in 0..n {
                                let x_f = field.mul(
                                    field.mul(v(1, 6, a, f), v(2, 6, b, f)),
                                    field.mul(
                                        v(3, 6, c, f),
                                        field.mul(v(4, 6, d, f), v(5, 6, e, f)),
                                    ),
                                );
                                total = field.mul_add(total, pre, x_f);
                            }
                        }
                    }
                }
            }
        }
        total
    }

    /// The Nešetřil–Poljak evaluation (§4.1): three `N² × N²` matrices
    /// and one fast matrix product — `O(N^{2ω})` operations but `O(N^4)`
    /// space.
    #[must_use]
    pub fn eval_nesetril_poljak(&self, field: &PrimeField) -> (u64, SpaceStats) {
        let n = self.size;
        let n2 = n * n;
        // U_{ab,cd} = χ12_ab χ13_ac χ14_ad χ23_bc χ24_bd
        let u = Matrix::from_fn(n2, n2, |ab, cd| {
            let (a, b) = (ab / n, ab % n);
            let (c, d) = (cd / n, cd % n);
            field.mul(
                field.mul(self.chi(1, 2).get(a, b), self.chi(1, 3).get(a, c)),
                field.mul(
                    self.chi(1, 4).get(a, d),
                    field.mul(self.chi(2, 3).get(b, c), self.chi(2, 4).get(b, d)),
                ),
            )
        });
        // S_{ab,ef} = χ15_ae χ16_af χ25_be χ26_bf χ56_ef
        let s = Matrix::from_fn(n2, n2, |ab, ef| {
            let (a, b) = (ab / n, ab % n);
            let (e, f) = (ef / n, ef % n);
            field.mul(
                field.mul(self.chi(1, 5).get(a, e), self.chi(1, 6).get(a, f)),
                field.mul(
                    self.chi(2, 5).get(b, e),
                    field.mul(self.chi(2, 6).get(b, f), self.chi(5, 6).get(e, f)),
                ),
            )
        });
        // T_{cd,ef} = χ34_cd χ35_ce χ36_cf χ45_de χ46_df
        let t = Matrix::from_fn(n2, n2, |cd, ef| {
            let (c, d) = (cd / n, cd % n);
            let (e, f) = (ef / n, ef % n);
            field.mul(
                field.mul(self.chi(3, 4).get(c, d), self.chi(3, 5).get(c, e)),
                field.mul(
                    self.chi(3, 6).get(c, f),
                    field.mul(self.chi(4, 5).get(d, e), self.chi(4, 6).get(d, f)),
                ),
            )
        });
        // V = S T^T (fast product), then X = Σ U ∘ V.
        let v = s.mul(field, &t.transpose());
        let total = u.hadamard(field, &v).sum(field);
        let peak = 15 * n2 + 4 * n2 * n2; // inputs + U, S, T, V
        (total, SpaceStats { peak_field_elements: peak })
    }

    /// The paper's new circuit (Theorem 13): `X = Σ_{r=1}^R P(r)` where
    /// each term costs a constant number of `N × N` fast matrix products
    /// and `O(N²)` space. `t_pow` is the Kronecker power: the matrices
    /// must have size `tensor.n0()^t_pow`.
    ///
    /// # Panics
    ///
    /// Panics if the size does not equal `n0^t_pow`.
    #[must_use]
    pub fn eval_circuit(
        &self,
        field: &PrimeField,
        tensor: &MatMulTensor,
        t_pow: usize,
    ) -> (u64, SpaceStats) {
        let n = self.size;
        assert_eq!(n, tensor.n0().pow(t_pow as u32), "size must be n0^t_pow");
        let r_total = tensor.r0().pow(t_pow as u32);
        let mut total = 0u64;
        for r in 0..r_total {
            let alpha =
                Matrix::from_fn(n, n, |d, e| field.from_i64(tensor.alpha_power(t_pow, d, e, r)));
            let beta =
                Matrix::from_fn(n, n, |e, f| field.from_i64(tensor.beta_power(t_pow, e, f, r)));
            let gamma =
                Matrix::from_fn(n, n, |d, f| field.from_i64(tensor.gamma_power(t_pow, d, f, r)));
            total = field.add(total, self.term(field, &alpha, &beta, &gamma));
        }
        // Inputs + the three coefficient matrices + ~6 temporaries inside
        // `term` — all N².
        let peak = 15 * n * n + 9 * n * n;
        (total, SpaceStats { peak_field_elements: peak })
    }

    /// One term of the circuit: equations (11)–(12) of the paper with
    /// coefficient matrices `alpha[d][e']`, `beta[e][f']`,
    /// `gamma[d'][f]`.
    fn term(&self, field: &PrimeField, alpha: &Matrix, beta: &Matrix, gamma: &Matrix) -> u64 {
        // H_ad = Σ_{e'} χ15_{ae'} (α_{de'} χ45_{de'}):  H = χ15 · (α∘χ45)^T
        let h = self.chi(1, 5).mul(field, &alpha.hadamard(field, self.chi(4, 5)).transpose());
        // A_ab = Σ_d χ14_{ad} H_ad χ24_{bd}:  A = (χ14 ∘ H) · χ24^T
        let a = self.chi(1, 4).hadamard(field, &h).mul(field, &self.chi(2, 4).transpose());
        // K_be = Σ_{f'} χ26_{bf'} (β_{ef'} χ56_{ef'}):  K = χ26 · (β∘χ56)^T
        let k = self.chi(2, 6).mul(field, &beta.hadamard(field, self.chi(5, 6)).transpose());
        // B_bc = Σ_e χ25_{be} K_be χ35_{ce}:  B = (χ25 ∘ K) · χ35^T
        let b = self.chi(2, 5).hadamard(field, &k).mul(field, &self.chi(3, 5).transpose());
        // L_cf = Σ_{d'} χ34_{cd'} (γ_{d'f} χ46_{d'f}):  L = χ34 · (γ∘χ46)
        let l = self.chi(3, 4).mul(field, &gamma.hadamard(field, self.chi(4, 6)));
        // C_ac = Σ_f χ16_{af} (χ36_{cf} L_cf):  C = χ16 · (χ36 ∘ L)^T
        let c = self.chi(1, 6).mul(field, &self.chi(3, 6).hadamard(field, &l).transpose());
        // Q_ab = Σ_c (χ13_{ac} C_ac)(χ23_{bc} B_bc):  Q = (χ13∘C) · (χ23∘B)^T
        let q = self
            .chi(1, 3)
            .hadamard(field, &c)
            .mul(field, &self.chi(2, 3).hadamard(field, &b).transpose());
        // P = Σ_ab χ12_ab A_ab Q_ab
        self.chi(1, 2).hadamard(field, &a).hadamard(field, &q).sum(field)
    }

    /// Evaluates the proof polynomial `P(x)` of §5.2 at `x0`: the
    /// coefficient matrices `α(x)`, `β(x)`, `γ(x)` interpolate the rank-one
    /// terms over `x = 1..R` (computed with Yates's algorithm over the
    /// Kronecker structure plus the `O(R)` Lagrange scaffolding of §5.3),
    /// and one circuit term is evaluated. `deg P <= 3(R-1)` and
    /// `Σ_{r=1}^R P(r) = X`.
    ///
    /// # Panics
    ///
    /// Panics if the size does not equal `n0^t_pow` or `R >= q`.
    #[must_use]
    pub fn eval_proof_at(
        &self,
        field: &PrimeField,
        tensor: &MatMulTensor,
        t_pow: usize,
        x0: u64,
    ) -> u64 {
        let n = self.size;
        let n0 = tensor.n0();
        assert_eq!(n, n0.pow(t_pow as u32), "size must be n0^t_pow");
        let r_total = tensor.r0().pow(t_pow as u32);
        // Λ_r(x0) over nodes 1..R, then one Yates transform per
        // coefficient family: the N² × R Kronecker-power matrix applied
        // to the Λ vector (equation (18) of the paper).
        let lambda = lagrange_basis_at(field, r_total, x0);
        let alpha_flat = yates(field, tensor.alpha0(), t_pow, &lambda);
        let beta_flat = yates(field, tensor.beta0(), t_pow, &lambda);
        let gamma_flat = yates(field, tensor.gamma0(), t_pow, &lambda);
        let unflatten =
            |flat: &[u64]| Matrix::from_fn(n, n, |i, j| flat[interleave(i, j, n0, t_pow)]);
        let alpha = unflatten(&alpha_flat);
        let beta = unflatten(&beta_flat);
        let gamma = unflatten(&gamma_flat);
        self.term(field, &alpha, &beta, &gamma)
    }

    /// Degree bound of the proof polynomial: `3(R - 1)` for `R = R0^t`.
    #[must_use]
    pub fn proof_degree_bound(tensor: &MatMulTensor, t_pow: usize) -> usize {
        3 * (tensor.r0().pow(t_pow as u32) - 1)
    }
}

/// Flattens the index pair `(i, j)` (each `t` digits in base `n0`) into
/// the interleaved base-`n0²` index whose digit `ℓ` is
/// `i_ℓ * n0 + j_ℓ` — the row indexing of the Kronecker-power coefficient
/// matrices.
#[must_use]
pub fn interleave(mut i: usize, mut j: usize, n0: usize, t_pow: usize) -> usize {
    let mut out = 0usize;
    let mut scale = 1usize;
    for _ in 0..t_pow {
        out += ((i % n0) * n0 + (j % n0)) * scale;
        i /= n0;
        j /= n0;
        scale *= n0 * n0;
    }
    debug_assert_eq!(i, 0);
    debug_assert_eq!(j, 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_ff::{RngLike, SplitMix64};

    fn f() -> PrimeField {
        PrimeField::new(1_000_000_007).unwrap()
    }

    fn random_form(n: usize, distinct: bool, seed: u64) -> Form62 {
        let field = f();
        let mut rng = SplitMix64::new(seed);
        if distinct {
            Form62::new(
                (0..15)
                    .map(|_| Matrix::from_fn(n, n, |_, _| rng.next_u64() % field.modulus()))
                    .collect(),
            )
        } else {
            Form62::uniform(Matrix::from_fn(n, n, |_, _| rng.next_u64() % 5))
        }
    }

    #[test]
    fn pair_index_is_a_bijection() {
        let mut seen = [false; 15];
        for s in 1..6 {
            for t in s + 1..=6 {
                let idx = pair_index(s, t);
                assert!(!seen[idx], "duplicate index for ({s},{t})");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
        assert_eq!(pair_index(1, 2), 0);
        assert_eq!(pair_index(5, 6), 14);
    }

    #[test]
    fn nesetril_poljak_matches_naive() {
        let field = f();
        for (n, distinct, seed) in
            [(2usize, false, 1u64), (3, false, 2), (2, true, 3), (3, true, 4)]
        {
            let form = random_form(n, distinct, seed);
            let naive = form.eval_naive(&field);
            let (np, stats) = form.eval_nesetril_poljak(&field);
            assert_eq!(np, naive, "n={n} distinct={distinct}");
            assert!(stats.peak_field_elements >= 4 * n * n * n * n);
        }
    }

    #[test]
    fn circuit_matches_naive_strassen() {
        let field = f();
        let tensor = MatMulTensor::strassen();
        for (t_pow, distinct, seed) in
            [(1usize, false, 5u64), (1, true, 6), (2, false, 7), (2, true, 8)]
        {
            let n = 2usize.pow(t_pow as u32);
            let form = random_form(n, distinct, seed);
            let naive = form.eval_naive(&field);
            let (circ, stats) = form.eval_circuit(&field, &tensor, t_pow);
            assert_eq!(circ, naive, "t={t_pow} distinct={distinct}");
            // O(N²) space: nowhere near the N⁴ of Nešetřil–Poljak.
            assert!(stats.peak_field_elements <= 24 * n * n);
        }
    }

    #[test]
    fn circuit_matches_naive_naive_tensor() {
        let field = f();
        let tensor = MatMulTensor::naive(3);
        let form = random_form(3, true, 9);
        let naive = form.eval_naive(&field);
        let (circ, _) = form.eval_circuit(&field, &tensor, 1);
        assert_eq!(circ, naive);
    }

    #[test]
    fn proof_at_integer_nodes_sums_to_form() {
        let field = f();
        let tensor = MatMulTensor::strassen();
        for (t_pow, seed) in [(1usize, 10u64), (2, 11)] {
            let n = 2usize.pow(t_pow as u32);
            let form = random_form(n, false, seed);
            let r_total = 7usize.pow(t_pow as u32);
            let mut sum = 0u64;
            for r in 1..=r_total as u64 {
                sum = field.add(sum, form.eval_proof_at(&field, &tensor, t_pow, r));
            }
            assert_eq!(sum, form.eval_naive(&field), "t={t_pow}");
        }
    }

    #[test]
    fn proof_is_a_low_degree_polynomial() {
        // Interpolate P from 3(R-1)+1 generic evaluations; it must then
        // reproduce evaluations anywhere.
        let field = f();
        let tensor = MatMulTensor::strassen();
        let t_pow = 1;
        let form = random_form(2, true, 12);
        let d = Form62::proof_degree_bound(&tensor, t_pow);
        let pts: Vec<(u64, u64)> = (0..=d as u64)
            .map(|i| {
                let x = 1000 + i;
                (x, form.eval_proof_at(&field, &tensor, t_pow, x))
            })
            .collect();
        let poly = camelot_poly::interpolate(&field, &pts);
        for x in [0u64, 3, 500, 123_456] {
            assert_eq!(
                poly.eval(&field, x),
                form.eval_proof_at(&field, &tensor, t_pow, x),
                "x = {x}"
            );
        }
    }
}
