//! # camelot-cliques — k-clique counting via the `(6 2)`-linear form
//!
//! The paper's main technical result (§4–§5): a new arithmetic circuit
//! for the `(6 2)`-linear form that matches the Nešetřil–Poljak operation
//! count while reducing space from `O(N⁴)` to `O(N²)` ([`Form62`],
//! Theorem 13), its extension to a Camelot proof polynomial with
//! `O(N^{ω+ε})`-time per-node evaluation (Theorem 1), and the k-clique
//! reduction `χ_{AB} = [A ∪ B is a clique, A ∩ B = ∅]` over
//! `k/6`-subsets ([`KCliqueCount`], Theorems 1–2), plus the sequential
//! baselines for the benchmarks.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod form62;
mod kclique;

pub use form62::{interleave, pair_index, Form62, SpaceStats};
pub use kclique::{
    clique_chi, clique_multiplicity, count_cliques_circuit, count_cliques_nesetril_poljak,
    subsets_of_size, KCliqueCount,
};
