//! Camelot k-clique counting (Theorems 1 and 2, §5).
//!
//! For `k` divisible by 6, index the `(6 2)`-linear form by the
//! `k/6`-subsets of `V(G)`: `χ_{AB} = [A ∪ B is a clique and A ∩ B = ∅]`.
//! The form then counts each `k`-clique exactly
//! `k! / ((k/6)!)^6` times (ordered partitions into six parts), so
//!
//! * Theorem 2: the new circuit evaluates the count in `O(N^{2ω+ε})`
//!   time and `O(N²)` space for `N = C(n, k/6)`;
//! * Theorem 1: the proof polynomial of §5.2 has degree `≤ 3R` and each
//!   node evaluates it in `O(N^{ω+ε})` time — proof size and per-node
//!   time `O(n^{(ω+ε)k/6})`, matching the Nešetřil–Poljak total.

use crate::form62::Form62;
use camelot_core::{CamelotError, CamelotProblem, Evaluate, PrimeProof, ProofSpec};
use camelot_ff::{crt_u, PrimeField, Residue, UBig};
use camelot_graph::Graph;
use camelot_linalg::{MatMulTensor, Matrix};

/// Enumerates all `size`-subsets of `[n]` as bitmasks, in lexicographic
/// order of their sorted element lists.
#[must_use]
pub fn subsets_of_size(n: usize, size: usize) -> Vec<u64> {
    let mut out = Vec::new();
    if size > n {
        return out;
    }
    if size == 0 {
        return vec![0];
    }
    let mut stack: Vec<(u64, usize, usize)> = vec![(0, 0, size)];
    while let Some((mask, next, left)) = stack.pop() {
        if left == 0 {
            out.push(mask);
            continue;
        }
        // Push in reverse so lexicographically smaller choices pop first.
        for v in (next..=n - left).rev() {
            stack.push((mask | 1 << v, v + 1, left - 1));
        }
    }
    out
}

/// Builds the clique indicator matrix `χ` over the `k/6`-subsets,
/// zero-padded to `padded` rows/columns (padding cannot create spurious
/// form contributions because every index occurs in some factor).
#[must_use]
pub fn clique_chi(g: &Graph, part_size: usize, padded: usize) -> Matrix {
    let subsets = subsets_of_size(g.vertex_count(), part_size);
    let real = subsets.len();
    assert!(padded >= real, "padding must not truncate");
    Matrix::from_fn(padded, padded, |i, j| {
        if i >= real || j >= real {
            return 0;
        }
        let (a, b) = (subsets[i], subsets[j]);
        u64::from(a & b == 0 && g.is_clique(a | b))
    })
}

/// Number of times the `(6 2)` form counts each `k`-clique:
/// `k! / ((k/6)!)^6`.
#[must_use]
pub fn clique_multiplicity(k: usize) -> UBig {
    let part = k / 6;
    let mut numer = UBig::one();
    for i in 1..=k as u64 {
        numer = numer.mul_u64(i);
    }
    let mut part_fact = 1u64;
    for i in 1..=part as u64 {
        part_fact *= i;
    }
    let mut value = numer;
    for _ in 0..6 {
        let (q, r) = value.div_rem_u64(part_fact);
        assert_eq!(r, 0, "multinomial must divide exactly");
        value = q;
    }
    value
}

/// The k-clique-counting Camelot problem (Theorem 1).
#[derive(Clone, Debug)]
pub struct KCliqueCount {
    graph: Graph,
    k: usize,
    tensor: MatMulTensor,
    t_pow: usize,
    padded: usize,
}

impl KCliqueCount {
    /// Creates the problem with the Strassen tensor.
    ///
    /// # Panics
    ///
    /// Panics unless `k` is a positive multiple of 6 with `k <= n`.
    #[must_use]
    pub fn new(graph: Graph, k: usize) -> Self {
        Self::with_tensor(graph, k, MatMulTensor::strassen())
    }

    /// Creates the problem with a caller-chosen tensor decomposition.
    ///
    /// # Panics
    ///
    /// Panics unless `k` is a positive multiple of 6 with `k <= n`.
    #[must_use]
    pub fn with_tensor(graph: Graph, k: usize, tensor: MatMulTensor) -> Self {
        assert!(k > 0 && k.is_multiple_of(6), "k must be a positive multiple of 6");
        assert!(k <= graph.vertex_count(), "k exceeds the vertex count");
        let real = binomial(graph.vertex_count(), k / 6);
        let n0 = tensor.n0();
        let mut padded = 1usize;
        let mut t_pow = 0usize;
        while padded < real {
            padded *= n0;
            t_pow += 1;
        }
        KCliqueCount { graph, k, tensor, t_pow, padded }
    }

    /// The matrix size `N` after padding.
    #[must_use]
    pub fn padded_size(&self) -> usize {
        self.padded
    }

    /// The rank `R = R0^t` driving proof size.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.tensor.r0().pow(self.t_pow as u32)
    }
}

fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let mut acc = 1u128;
    for i in 0..k {
        acc = acc * (n - i) as u128 / (i + 1) as u128;
    }
    usize::try_from(acc).expect("binomial fits usize")
}

impl CamelotProblem for KCliqueCount {
    type Output = UBig;

    fn spec(&self) -> ProofSpec {
        let degree = Form62::proof_degree_bound(&self.tensor, self.t_pow);
        // X <= multiplicity * C(n, k) <= n^k.
        let bits = (self.k as f64) * (self.graph.vertex_count().max(2) as f64).log2() + 2.0;
        ProofSpec {
            degree_bound: degree,
            min_modulus: (degree as u64 + 2).max(self.rank() as u64 + 1),
            value_bits: bits.ceil() as u64,
        }
    }

    fn evaluator<'a>(&'a self, field: &PrimeField) -> Box<dyn Evaluate + 'a> {
        let f = *field;
        let chi = clique_chi(&self.graph, self.k / 6, self.padded);
        let form = Form62::uniform(chi);
        let tensor = self.tensor.clone();
        let t_pow = self.t_pow;
        Box::new(move |x0: u64| form.eval_proof_at(&f, &tensor, t_pow, x0))
    }

    fn recover(&self, proofs: &[PrimeProof]) -> Result<UBig, CamelotError> {
        let r_total = self.rank() as u64;
        let residues: Vec<Residue> = proofs.iter().map(|p| p.sum_residue(1, r_total)).collect();
        let form_value = crt_u(&residues);
        let multiplicity = clique_multiplicity(self.k);
        let d = multiplicity.to_u64().ok_or_else(|| CamelotError::RecoveryFailed {
            reason: "clique multiplicity exceeds u64 (k too large)".into(),
        })?;
        let (value, rem) = form_value.div_rem_u64(d);
        if rem != 0 {
            return Err(CamelotError::RecoveryFailed {
                reason: "form value not divisible by the clique multiplicity".into(),
            });
        }
        Ok(value)
    }
}

/// Theorem 2 as a standalone sequential algorithm: counts `k`-cliques
/// with the new `O(N²)`-space circuit, reconstructing the count over the
/// integers from enough primes.
///
/// # Panics
///
/// Panics unless `k` is a positive multiple of 6 with `k <= n`.
#[must_use]
pub fn count_cliques_circuit(g: &Graph, k: usize, tensor: &MatMulTensor) -> UBig {
    let problem = KCliqueCount::with_tensor(g.clone(), k, tensor.clone());
    let spec = problem.spec();
    let primes = camelot_core::choose_primes(&spec, 0);
    let chi = clique_chi(g, k / 6, problem.padded);
    let form = Form62::uniform(chi);
    let residues: Vec<Residue> = primes
        .iter()
        .map(|&q| {
            let field = PrimeField::new_unchecked(q);
            let (value, _) = form.eval_circuit(&field, tensor, problem.t_pow);
            Residue { modulus: q, value }
        })
        .collect();
    let form_value = crt_u(&residues);
    exact_div(form_value, &clique_multiplicity(k))
}

/// The Nešetřil–Poljak sequential baseline: counts `k`-cliques (for `k`
/// divisible by 3) as triangles of the auxiliary graph on `k/3`-subsets,
/// via one fast `N × N` matrix product chain — `O(N^ω)` time, `O(N²)`
/// space for `N = C(n, k/3)` (total time `O(n^{(ω+ε)k/3})`).
///
/// # Panics
///
/// Panics unless `k` is a positive multiple of 3 with `k <= n`.
#[must_use]
pub fn count_cliques_nesetril_poljak(g: &Graph, k: usize) -> UBig {
    assert!(k > 0 && k.is_multiple_of(3), "k must be a positive multiple of 3");
    assert!(k <= g.vertex_count(), "k exceeds the vertex count");
    let part = k / 3;
    let subsets = subsets_of_size(g.vertex_count(), part);
    let real = subsets.len();
    let mut padded = 1usize;
    while padded < real {
        padded *= 2;
    }
    // Aux adjacency: disjoint subsets whose union is a clique.
    let adj = Matrix::from_fn(padded, padded, |i, j| {
        if i >= real || j >= real || i == j {
            return 0;
        }
        let (a, b) = (subsets[i], subsets[j]);
        u64::from(a & b == 0 && g.is_clique(a | b))
    });
    // trace(M³) = 6 * (ordered triangles / ... ) — counts each k-clique
    // k!/((k/3)!)³ times as an ordered triple.
    let mut bits = (k as f64) * (g.vertex_count().max(2) as f64).log2() + 3.0;
    bits = bits.ceil();
    let spec_primes = {
        let mut primes = Vec::new();
        let mut covered = 0f64;
        let mut cursor = 1u64 << 40;
        while covered <= bits {
            let p = camelot_ff::primes_above(cursor, 1)[0];
            covered += 40.0;
            cursor = p + 1;
            primes.push(p);
        }
        primes
    };
    let residues: Vec<Residue> = spec_primes
        .iter()
        .map(|&q| {
            let field = PrimeField::new_unchecked(q);
            let m2 = adj.mul(&field, &adj);
            let m3 = m2.mul(&field, &adj);
            Residue { modulus: q, value: m3.trace(&field) }
        })
        .collect();
    let trace = crt_u(&residues);
    // multiplicity = k! / ((k/3)!)³ (ordered triples of parts).
    let mut mult = UBig::one();
    for i in 1..=k as u64 {
        mult = mult.mul_u64(i);
    }
    let mut pf = 1u64;
    for i in 1..=part as u64 {
        pf *= i;
    }
    for _ in 0..3 {
        let (q, r) = mult.div_rem_u64(pf);
        assert_eq!(r, 0);
        mult = q;
    }
    exact_div(trace, &mult)
}

/// Exact division of `UBig` by a word-sized divisor.
///
/// Clique multiplicities `k!/((k/6)!)^6` and `k!/((k/3)!)^3` fit `u64`
/// for every `k <= 30`, far beyond what any in-memory instance reaches.
fn exact_div(value: UBig, divisor: &UBig) -> UBig {
    let d = divisor.to_u64().expect("divisor exceeds u64; unsupported k");
    let (q, r) = value.div_rem_u64(d);
    assert_eq!(r, 0, "division must be exact");
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_core::Engine;
    use camelot_graph::{count_k_cliques, gen};

    #[test]
    fn subsets_enumeration() {
        assert_eq!(subsets_of_size(4, 2).len(), 6);
        assert_eq!(subsets_of_size(5, 0), vec![0]);
        assert_eq!(subsets_of_size(3, 3), vec![0b111]);
        assert_eq!(subsets_of_size(2, 3), Vec::<u64>::new());
        let s = subsets_of_size(5, 2);
        assert_eq!(s[0], 0b00011);
        assert!(s.iter().all(|m| m.count_ones() == 2));
    }

    #[test]
    fn multiplicity_values() {
        assert_eq!(clique_multiplicity(6).to_u64(), Some(720)); // 6!/1
        assert_eq!(clique_multiplicity(12).to_u64(), Some(479_001_600 / 64)); // 12!/2^6
    }

    #[test]
    fn circuit_counts_k6_on_complete_graphs() {
        let tensor = MatMulTensor::strassen();
        for n in [6usize, 7, 8] {
            let g = gen::complete(n);
            let expect = count_k_cliques(&g, 6);
            let got = count_cliques_circuit(&g, 6, &tensor);
            assert_eq!(got.to_u64(), Some(expect), "K_{n}");
        }
    }

    #[test]
    fn circuit_counts_k6_on_random_graphs() {
        let tensor = MatMulTensor::strassen();
        for seed in 0..3 {
            let g = gen::gnp(8, u32::MAX / 5 * 4, seed); // dense-ish
            let expect = count_k_cliques(&g, 6);
            let got = count_cliques_circuit(&g, 6, &tensor);
            assert_eq!(got.to_u64(), Some(expect), "seed {seed}");
        }
    }

    #[test]
    fn nesetril_poljak_baseline_agrees() {
        for n in [6usize, 7, 8, 9] {
            let g = gen::gnp(n, u32::MAX / 4 * 3, n as u64);
            assert_eq!(
                count_cliques_nesetril_poljak(&g, 6).to_u64(),
                Some(count_k_cliques(&g, 6)),
                "n = {n}"
            );
            assert_eq!(
                count_cliques_nesetril_poljak(&g, 3).to_u64(),
                Some(count_k_cliques(&g, 3)),
                "triangles n = {n}"
            );
        }
    }

    #[test]
    fn camelot_kclique_end_to_end() {
        let g = gen::planted_clique(7, 6, 6, 42);
        let expect = count_k_cliques(&g, 6);
        assert!(expect >= 1);
        let problem = KCliqueCount::new(g, 6);
        let outcome = Engine::sequential(8, 2).run(&problem).unwrap();
        assert_eq!(outcome.output.to_u64(), Some(expect));
        // Proof size is Θ(R) = Θ(N^ω) per prime.
        assert!(outcome.certificate.degree_bound <= 3 * problem.rank());
    }

    #[test]
    fn camelot_kclique_zero_cliques() {
        // Bipartite graphs have no 6-cliques (no triangles even).
        let g = gen::complete_bipartite(3, 4);
        let problem = KCliqueCount::new(g, 6);
        let outcome = Engine::sequential(4, 1).run(&problem).unwrap();
        assert_eq!(outcome.output.to_u64(), Some(0));
    }
}
