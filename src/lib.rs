//! # camelot — verifiable distributed batch evaluation
//!
//! Umbrella crate for the reproduction of *“How Proofs are Prepared at
//! Camelot”* (Björklund–Kaski, PODC 2016). Re-exports every workspace
//! crate under one namespace; see `README.md` at the repository root for
//! the architecture map and the per-experiment index.
//!
//! ## Example
//!
//! Count triangles with a byzantine-robust, independently verifiable
//! distributed proof:
//!
//! ```
//! use camelot::core::Engine;
//! use camelot::graph::{count_triangles, gen};
//! use camelot::triangles::TriangleCount;
//!
//! let graph = gen::gnm(16, 40, 7);
//! let problem = TriangleCount::new(&graph);
//! let outcome = Engine::sequential(8, 4).run(&problem)?;
//! assert_eq!(outcome.output, count_triangles(&graph));
//! assert!(outcome.certificate.identified_faulty_nodes.is_empty());
//! // The certificate is a static artefact anyone can re-verify:
//! let wire = outcome.certificate.to_wire();
//! let parsed = camelot::core::Certificate::from_wire(&wire)?;
//! assert_eq!(parsed, outcome.certificate);
//! # Ok::<(), camelot::core::CamelotError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use camelot_algebraic as algebraic;
pub use camelot_cliques as cliques;
pub use camelot_cluster as cluster;
pub use camelot_core as core;
pub use camelot_csp as csp;
pub use camelot_ff as ff;
pub use camelot_graph as graph;
pub use camelot_linalg as linalg;
pub use camelot_partition as partition;
pub use camelot_poly as poly;
pub use camelot_rscode as rscode;
pub use camelot_server as server;
pub use camelot_store as store;
pub use camelot_triangles as triangles;
