//! Theorem 1 in action: counting 6-cliques with the (6 2)-linear form,
//! sweeping the node count to show the smooth E = T/K tradeoff.
//!
//! ```sh
//! cargo run --release --example clique_census
//! ```

use camelot::cliques::{count_cliques_nesetril_poljak, KCliqueCount};
use camelot::core::{CamelotProblem, Engine};
use camelot::graph::{count_k_cliques, gen};

fn main() {
    let graph = gen::planted_clique(8, 8, 6, 99);
    let brute = count_k_cliques(&graph, 6);
    let np = count_cliques_nesetril_poljak(&graph, 6);
    println!("input: {graph}; 6-cliques by brute force = {brute}, by Nešetřil–Poljak = {np}");

    let problem = KCliqueCount::new(graph, 6);
    println!(
        "χ matrix N = {} (padded), rank R = {}, proof degree 3R-3 = {}",
        problem.padded_size(),
        problem.rank(),
        problem.spec().degree_bound
    );
    println!("\n  K nodes | per-node evals E | E*K");
    println!("  --------+------------------+------");
    for k in [1usize, 4, 16, 64] {
        let outcome = Engine::sequential(k, 2).run(&problem).expect("honest run");
        assert_eq!(outcome.output.to_u64(), Some(brute));
        println!(
            "  {k:>7} | {:>16} | {:>5}",
            outcome.report.max_node_evaluations,
            outcome.report.max_node_evaluations * k
        );
    }
    println!("\nsame proof, same answer, smoothly spread over K Knights (§1.4).");
}
