//! The Merlin–Arthur reading (§1.5): should Merlin materialize, he can
//! supply the proof instantaneously; Arthur verifies with a handful of
//! random evaluations — and catches a lying Merlin.
//!
//! ```sh
//! cargo run --release --example merlin_arthur
//! ```

use camelot::algebraic::Permanent;
use camelot::core::{arthur_verify, merlin_prove, CamelotProblem};
use camelot::ff::PrimeField;

fn main() {
    let problem = Permanent::random(8, 5, 2024);
    println!("input: random 8x8 integer matrix, entries in [-5, 5]");

    // Merlin computes the proof coefficients directly.
    let proofs = merlin_prove(&problem).expect("Merlin does not fail");
    let size: usize = proofs.iter().map(|p| p.coefficients.len()).sum();
    println!("Merlin's proof: {} prime fields, {size} coefficients total", proofs.len());

    // Arthur verifies with 8 spot checks per prime.
    arthur_verify(&problem, &proofs, 8, 42).expect("honest Merlin accepted");
    let permanent = problem.recover(&proofs).expect("recovery");
    println!("per(A) = {permanent} (matches Ryser: {})", problem.reference_permanent());
    assert_eq!(permanent, problem.reference_permanent());

    // A lying Merlin flips one coefficient...
    let mut lying = proofs.clone();
    let f = PrimeField::new_unchecked(lying[0].modulus);
    lying[0].coefficients[3] = f.add(lying[0].coefficients[3], 1);
    match arthur_verify(&problem, &lying, 8, 42) {
        Err(e) => println!("lying Merlin rejected: {e}"),
        Ok(()) => unreachable!("soundness error is ~d/q per trial, 8 trials"),
    }
}
