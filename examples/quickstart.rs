//! Quickstart: count triangles in a graph with a verifiable distributed
//! proof.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use camelot::core::{CamelotProblem, Engine};
use camelot::graph::gen;
use camelot::triangles::TriangleCount;

fn main() {
    // The common input: a random graph on 24 vertices with 72 edges.
    let graph = gen::gnm(24, 72, 7);
    println!("input: {graph}");

    // The Camelot problem: triangle counting via the split/sparse proof
    // polynomial of Theorem 3 (proof size ~ n^2.81 / m).
    let problem = TriangleCount::new(&graph);
    let spec = problem.spec();
    println!(
        "proof polynomial degree d = {}, value bound 2^{} (primes chosen automatically)",
        spec.degree_bound, spec.value_bits
    );

    // 12 simulated Knights prepare the proof; fault budget f = 6.
    let engine = Engine::sequential(12, 6);
    let outcome = engine.run(&problem).expect("honest run must succeed");

    println!("triangles            = {}", outcome.output);
    println!("code length e        = {}", outcome.certificate.code_length);
    println!("proof size           = {} field elements", outcome.certificate.proof_size());
    println!("total evaluations    = {}", outcome.report.total_evaluations);
    println!(
        "per-node evaluations = {} (the paper's E = T/K)",
        outcome.report.max_node_evaluations
    );
    println!("spot checks passed   = {}", outcome.report.verification_evaluations);
    assert!(outcome.certificate.identified_faulty_nodes.is_empty());
    println!("\nall Knights behaved; the proof verifies.");
}
