//! Computing a full chromatic polynomial with per-value Camelot proofs
//! (Theorem 6): one distributed run per color count, exact integer
//! interpolation at the end.
//!
//! ```sh
//! cargo run --release --example chromatic_camelot
//! ```

use camelot::core::Engine;
use camelot::graph::gen;
use camelot::partition::{chromatic_polynomial, eval_integer};

fn main() {
    let graph = gen::petersen();
    println!("input: the Petersen graph (n = 10, m = 15)");

    let engine = Engine::sequential(8, 4);
    let outcome = chromatic_polynomial(&graph, &engine).expect("honest run");

    println!("\nχ_G coefficients (x^0 upward):");
    for (i, c) in outcome.coefficients.iter().enumerate() {
        if !c.is_zero() {
            println!("  x^{i:<2} {c}");
        }
    }
    let chromatic_3 = eval_integer(&outcome.coefficients, 3);
    let chromatic_4 = eval_integer(&outcome.coefficients, 4);
    println!("\nχ(3) = {chromatic_3} (the Petersen graph has 120 proper 3-colorings)");
    println!("χ(4) = {chromatic_4}");
    assert_eq!(chromatic_3.to_i64(), Some(120));
    println!(
        "\n{} per-value certificates were produced; proof size at t = 3 is {} coefficients",
        outcome.certificates.len(),
        outcome.certificates[2].proof_size()
    );
}
