//! A scene of distress and relief at Camelot (§1.1 of the paper).
//!
//! K Knights jointly prepare a proof of the number of Hamiltonian cycles
//! in a graph. Morgana enchants three of them: one crashes, one corrupts
//! its symbols, one equivocates (sends different lies to different
//! receivers). The Reed–Solomon structure lets every honest Knight
//! recover the true proof — and name the enchanted ones.
//!
//! ```sh
//! cargo run --release --example byzantine_knights
//! ```

use camelot::algebraic::HamiltonianCycles;
use camelot::cluster::{FaultKind, FaultPlan};
use camelot::core::{Engine, EngineConfig};
use camelot::graph::gen;

fn main() {
    let graph = gen::complete(7); // 360 Hamiltonian cycles in K7
    let problem = HamiltonianCycles::new(graph);

    let knights = 12usize;
    let plan = FaultPlan::with_faults(
        knights,
        &[
            (2, FaultKind::Crash),
            (5, FaultKind::Corrupt { seed: 0xDA7A }),
            (9, FaultKind::Equivocate { seed: 0xBAD }),
        ],
    );
    println!("Knights: {knights}; Morgana enchants #2 (crash), #5 (corrupt), #9 (equivocate)");

    // Budget the code so whole enchanted slices are tolerable, and have
    // every honest Knight decode independently (they must agree).
    let config = EngineConfig::sequential(knights, 60).with_plan(plan).with_full_decoding();
    let outcome = Engine::new(config).run(&problem).expect("within the decoding radius");

    println!("Hamiltonian cycles  = {}", outcome.output);
    println!("liars identified    = {:?}", outcome.certificate.identified_faulty_nodes);
    println!("crashes identified  = {:?}", outcome.certificate.crashed_nodes);
    assert_eq!(outcome.certificate.identified_faulty_nodes, vec![5, 9]);
    assert_eq!(outcome.certificate.crashed_nodes, vec![2]);
    println!("\nevery honest Knight decoded the same proof and named the enchanted.");
}
