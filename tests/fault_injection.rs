//! Failure-injection boundary tests: every fault kind, at and beyond the
//! unique-decoding radius, plus certificate shipping.

use camelot::algebraic::{BoolMatrix, OrthogonalVectors};
use camelot::cluster::{FaultKind, FaultPlan};
use camelot::core::{spot_check, CamelotError, CamelotProblem, Certificate, Engine, EngineConfig};
use camelot::graph::{count_triangles, gen};
use camelot::triangles::TriangleCount;

fn problem() -> (TriangleCount, u64) {
    let g = gen::gnm(10, 22, 13);
    let t = count_triangles(&g);
    (TriangleCount::new(&g), t)
}

/// One node per symbol makes the error count exactly controllable.
fn one_symbol_per_node(spec_d: usize, budget: usize) -> usize {
    spec_d + 1 + 2 * budget
}

#[test]
fn exactly_at_the_radius_every_fault_kind_decodes() {
    let (p, expect) = problem();
    let d = p.spec().degree_bound;
    let budget = 3usize;
    let nodes = one_symbol_per_node(d, budget); // e == nodes: 1 symbol each
    for kind in [
        FaultKind::Corrupt { seed: 5 },
        FaultKind::Adversarial { offset: 1 },
        FaultKind::Equivocate { seed: 6 },
    ] {
        // Exactly `budget` faulty nodes = exactly `budget` symbol errors.
        let faults: Vec<(usize, FaultKind)> = (0..budget).map(|i| (i * 7 + 1, kind)).collect();
        let plan = FaultPlan::with_faults(nodes, &faults);
        let config = EngineConfig::sequential(nodes, budget).with_plan(plan).with_full_decoding();
        let outcome = Engine::new(config).run(&p).expect("exactly at the radius");
        assert_eq!(outcome.output, expect, "kind {kind:?}");
        assert_eq!(
            outcome.certificate.identified_faulty_nodes,
            faults.iter().map(|&(n, _)| n).collect::<Vec<_>>(),
            "kind {kind:?}"
        );
    }
}

#[test]
fn one_error_past_the_radius_fails_loudly() {
    let (p, _) = problem();
    let d = p.spec().degree_bound;
    let budget = 3usize;
    let nodes = one_symbol_per_node(d, budget);
    let faults: Vec<(usize, FaultKind)> =
        (0..budget + 1).map(|i| (i * 5 + 2, FaultKind::Corrupt { seed: 9 })).collect();
    let plan = FaultPlan::with_faults(nodes, &faults);
    let config = EngineConfig::sequential(nodes, budget).with_plan(plan);
    assert!(matches!(
        Engine::new(config).run(&p),
        Err(CamelotError::DecodeFailed { .. } | CamelotError::VerificationFailed { .. })
    ));
}

#[test]
fn crashes_cost_one_erasure_each() {
    // 2f = 6 budget: up to 6 erasures decode (vs only 3 errors).
    let (p, expect) = problem();
    let d = p.spec().degree_bound;
    let budget = 3usize;
    let nodes = one_symbol_per_node(d, budget);
    let faults: Vec<(usize, FaultKind)> =
        (0..2 * budget).map(|i| (i * 3 + 1, FaultKind::Crash)).collect();
    let plan = FaultPlan::with_faults(nodes, &faults);
    let config = EngineConfig::sequential(nodes, budget).with_plan(plan).with_full_decoding();
    let outcome = Engine::new(config).run(&p).expect("2f erasures are decodable");
    assert_eq!(outcome.output, expect);
    assert_eq!(outcome.certificate.crashed_nodes.len(), 2 * budget);
}

#[test]
fn all_honest_nodes_see_equivocation_differently_yet_agree() {
    let (p, expect) = problem();
    let d = p.spec().degree_bound;
    let nodes = one_symbol_per_node(d, 2);
    let plan = FaultPlan::with_faults(nodes, &[(4, FaultKind::Equivocate { seed: 1 })]);
    let config = EngineConfig::sequential(nodes, 2).with_plan(plan).with_full_decoding();
    let outcome = Engine::new(config).run(&p).expect("one equivocator within radius");
    assert_eq!(outcome.output, expect);
    assert_eq!(outcome.certificate.identified_faulty_nodes, vec![4]);
}

#[test]
fn certificate_survives_the_wire_and_still_verifies() {
    let a = BoolMatrix::random(8, 5, 40, 3);
    let b = BoolMatrix::random(8, 5, 40, 4);
    let ov = OrthogonalVectors::new(a, b);
    let outcome = Engine::sequential(4, 2).run(&ov).unwrap();
    // Ship the certificate as text; an independent verifier re-parses,
    // spot-checks, and recovers — no trust in the producing cluster.
    let wire = outcome.certificate.to_wire();
    let parsed = Certificate::from_wire(&wire).unwrap();
    assert_eq!(parsed, outcome.certificate);
    for proof in &parsed.proofs {
        let report = spot_check(&ov, proof, 4, 99).unwrap();
        assert!(report.accepted);
    }
    assert_eq!(ov.recover(&parsed.proofs).unwrap(), ov.reference_counts());
}

#[test]
fn tampered_wire_certificate_is_rejected_by_spot_check() {
    let a = BoolMatrix::random(6, 4, 50, 7);
    let b = BoolMatrix::random(6, 4, 50, 8);
    let ov = OrthogonalVectors::new(a, b);
    let outcome = Engine::sequential(3, 1).run(&ov).unwrap();
    let mut cert = outcome.certificate;
    // Flip one coefficient and re-ship.
    let q = cert.proofs[0].modulus;
    cert.proofs[0].coefficients[0] = (cert.proofs[0].coefficients[0] + 1) % q;
    let parsed = Certificate::from_wire(&cert.to_wire()).unwrap();
    let report = spot_check(&ov, &parsed.proofs[0], 6, 5).unwrap();
    assert!(!report.accepted, "tampered proof must fail the spot check");
}
