//! Cross-backend transport regressions: every broadcast backend must
//! produce bit-identical rounds on the full fault matrix — honest,
//! crash, corrupt, adversarial, equivocate — and the engine must run
//! end to end on each of them.

use camelot::cluster::{
    ChannelTransport, EvalProgram, FaultKind, FaultPlan, InProcess, ProgramEval, RoundSpec,
    SocketTransport, Transport,
};
use camelot::core::{
    Backend, CamelotError, CamelotProblem, Engine, EngineConfig, Evaluate, PrimeProof, ProofSpec,
    WorkerMode,
};
use camelot::ff::{crt_u, PrimeField, Residue};
use camelot::triangles::TriangleCount;

/// One of each behaviour over 10 nodes — the full fault matrix.
fn full_matrix_plan(nodes: usize) -> FaultPlan {
    FaultPlan::with_faults(
        nodes,
        &[
            (1, FaultKind::Crash),
            (3, FaultKind::Corrupt { seed: 21 }),
            (5, FaultKind::Adversarial { offset: 9 }),
            (7, FaultKind::Equivocate { seed: 33 }),
        ],
    )
}

fn all_backends() -> Vec<(&'static str, Box<dyn Transport>)> {
    vec![
        ("inproc", Box::new(InProcess::new(false))),
        ("inproc-par", Box::new(InProcess::new(true))),
        ("channel", Box::new(ChannelTransport::new())),
        ("socket", Box::new(SocketTransport::loopback())),
    ]
}

/// The acceptance criterion of the transport refactor: all backends,
/// same multi-polynomial round, bit-identical broadcasts — consensus
/// word, assignment, every receiver's view, and traffic accounting.
#[test]
fn all_backends_produce_bit_identical_broadcasts() {
    let nodes = 10;
    let field = PrimeField::new(1_048_583).unwrap();
    let points: Vec<u64> = (0..64).collect();
    let plan = full_matrix_plan(nodes);
    let spec = RoundSpec { field: &field, points: &points, plan: &plan };
    let eval = ProgramEval::new(
        &field,
        vec![EvalProgram::Poly(vec![5, 0, 3, 1]), EvalProgram::Poly(vec![1_000_000, 999])],
    );

    let reference = InProcess::new(false).run(&spec, &eval).expect("reference round");
    for (name, transport) in all_backends() {
        let outcome = transport.run(&spec, &eval).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(outcome.broadcasts.len(), 2, "{name}");
        for (poly, (got, want)) in outcome.broadcasts.iter().zip(&reference.broadcasts).enumerate()
        {
            assert!(got.same_word(want), "{name}: polynomial {poly} word diverged");
            for receiver in 0..nodes {
                assert_eq!(
                    got.view_for(receiver),
                    want.view_for(receiver),
                    "{name}: polynomial {poly}, receiver {receiver}"
                );
            }
            let evals: Vec<usize> = got.stats.iter().map(|s| s.evaluations).collect();
            let want_evals: Vec<usize> = want.stats.iter().map(|s| s.evaluations).collect();
            assert_eq!(evals, want_evals, "{name}: polynomial {poly} work accounting");
        }
        assert_eq!(outcome.traffic, reference.traffic, "{name}: traffic accounting");
    }
}

/// Closure rounds (no wire program) must agree across the in-process
/// backends; the socket backend must refuse them rather than guess.
#[test]
fn closure_rounds_agree_where_supported() {
    let field = PrimeField::new(1_000_003).unwrap();
    let points: Vec<u64> = (0..40).collect();
    let plan = full_matrix_plan(8);
    let spec = RoundSpec { field: &field, points: &points, plan: &plan };
    let eval = camelot::cluster::SingleEval(|x: u64| field.mul(x, field.add(x, 3)));

    let reference = InProcess::new(false).run(&spec, &eval).unwrap();
    for transport in
        [Box::new(InProcess::new(true)) as Box<dyn Transport>, Box::new(ChannelTransport::new())]
    {
        let outcome = transport.run(&spec, &eval).unwrap();
        assert!(outcome.broadcasts[0].same_word(&reference.broadcasts[0]));
    }
    assert!(SocketTransport::loopback().run(&spec, &eval).is_err());
}

/// A wire-expressible problem: the proof polynomial is handed over as
/// explicit coefficients, so socket workers can reconstruct it from the
/// task message alone. The recovered answer is `P(0)` over the
/// integers.
struct WirePoly {
    coeffs: Vec<u64>,
}

struct WirePolyEval {
    field: PrimeField,
    coeffs: Vec<u64>,
}

impl Evaluate for WirePolyEval {
    fn eval(&self, x0: u64) -> u64 {
        EvalProgram::Poly(self.coeffs.clone()).eval(&self.field, x0)
    }

    fn program(&self) -> Option<EvalProgram> {
        Some(EvalProgram::Poly(self.coeffs.clone()))
    }
}

impl CamelotProblem for WirePoly {
    type Output = u128;

    fn spec(&self) -> ProofSpec {
        ProofSpec::new(self.coeffs.len() - 1, 1 << 20, 64)
    }

    fn evaluator<'a>(&'a self, field: &PrimeField) -> Box<dyn Evaluate + 'a> {
        let coeffs = self.coeffs.iter().map(|&c| field.reduce(c)).collect();
        Box::new(WirePolyEval { field: *field, coeffs })
    }

    fn recover(&self, proofs: &[PrimeProof]) -> Result<u128, CamelotError> {
        let residues: Vec<Residue> =
            proofs.iter().map(|p| Residue { modulus: p.modulus, value: p.eval(0) }).collect();
        crt_u(&residues)
            .to_u128()
            .ok_or_else(|| CamelotError::RecoveryFailed { reason: "value exceeded u128".into() })
    }
}

/// The engine pipeline — prepare, decode at all nodes, spot-check,
/// recover — must produce identical outcomes on every backend,
/// including real loopback sockets, under the full fault matrix.
#[test]
fn engine_outcomes_are_identical_across_backends() {
    let problem = WirePoly { coeffs: vec![123_456_789, 7, 0, 5] };
    // One point per node: 4 faulty nodes = 2 errors + 1 erasure + 1
    // equivocated error per view, well within f = 6.
    let d = problem.spec().degree_bound;
    let budget = 6;
    let nodes = d + 1 + 2 * budget;

    let outcome_for = |backend: Backend| {
        let config = EngineConfig::sequential(nodes, budget)
            .with_plan(full_matrix_plan(nodes))
            .with_full_decoding()
            .with_backend(backend);
        Engine::new(config).run(&problem).expect("run must tolerate the fault matrix")
    };

    let reference = outcome_for(Backend::InProcess);
    assert_eq!(reference.output, 123_456_789);
    assert_eq!(reference.certificate.identified_faulty_nodes, vec![3, 5, 7]);
    assert_eq!(reference.certificate.crashed_nodes, vec![1]);
    assert_eq!(reference.report.rounds, reference.report.primes.len());
    assert!(reference.report.symbols_broadcast > 0);
    assert!(reference.report.bytes_on_wire > 0);

    for backend in [Backend::Channel, Backend::Socket(WorkerMode::Threads)] {
        let outcome = outcome_for(backend.clone());
        assert_eq!(outcome.output, reference.output, "{backend:?}");
        assert_eq!(outcome.certificate, reference.certificate, "{backend:?}");
        assert_eq!(
            outcome.report.symbols_broadcast, reference.report.symbols_broadcast,
            "{backend:?}"
        );
        assert_eq!(outcome.report.bytes_on_wire, reference.report.bytes_on_wire, "{backend:?}");
    }
}

/// A crash-fault plan pins the erasure set: every decider punctures the
/// same positions, so the first decode builds the punctured point tree
/// cold and the rest hit the keyed cache warm. The decoded proof must be
/// bit-identical across deciders (the engine's disagreement check runs
/// on every pair) and across all three transport backends, and the new
/// decode/xgcd observability counters must attribute nonzero time.
#[test]
fn crash_fault_erasure_decoding_is_identical_across_backends() {
    let problem = WirePoly { coeffs: vec![987_654_321, 11, 3, 0, 2] };
    let d = problem.spec().degree_bound;
    let budget = 5;
    let nodes = d + 1 + 2 * budget;
    // Crashes only: the erasure set is fixed and identical in every
    // decider's view, so warm cache hits recur within each run.
    let crashes: Vec<(usize, FaultKind)> =
        [2, 6, 9].iter().map(|&n| (n, FaultKind::Crash)).collect();
    let plan = FaultPlan::with_faults(nodes, &crashes);

    let outcome_for = |backend: Backend| {
        let config = EngineConfig::sequential(nodes, budget)
            .with_plan(plan.clone())
            .with_full_decoding()
            .with_backend(backend);
        Engine::new(config).run(&problem).expect("crash plan within budget must decode")
    };

    let reference = outcome_for(Backend::InProcess);
    assert_eq!(reference.output, 987_654_321);
    assert_eq!(reference.certificate.crashed_nodes, vec![2, 6, 9]);
    assert!(reference.certificate.identified_faulty_nodes.is_empty());
    assert!(
        reference.report.decode_time >= reference.report.xgcd_time,
        "xgcd time is a sub-phase of decode time"
    );
    assert!(
        reference.report.decode_time.as_nanos() > 0,
        "full decoding across deciders must accumulate decode time"
    );

    for backend in [Backend::Channel, Backend::Socket(WorkerMode::Threads)] {
        let outcome = outcome_for(backend.clone());
        assert_eq!(outcome.output, reference.output, "{backend:?}");
        assert_eq!(outcome.certificate, reference.certificate, "{backend:?}");
    }
}

/// Problems whose evaluators are opaque closures cannot run on the
/// socket backend — the engine must say so, not hang or mis-evaluate.
#[test]
fn socket_engine_rejects_closure_problems() {
    let g = camelot::graph::gen::petersen();
    let problem = TriangleCount::new(&g);
    let config = EngineConfig::sequential(4, 2).with_backend(Backend::Socket(WorkerMode::Threads));
    match Engine::new(config).run(&problem) {
        Err(CamelotError::TransportFailed { reason }) => {
            assert!(reason.contains("wire-expressible"), "unexpected reason: {reason}");
        }
        other => panic!("expected TransportFailed, got {other:?}"),
    }
}

/// A panicking evaluation closure must surface as a reported
/// `WorkerFailed` refusal on the threaded backends, never abort the
/// coordinator — the same guarantee the socket worker gives for hostile
/// frames, kept panic-free end to end by camelot-lint's `panic-path` rule.
#[test]
fn threaded_backends_report_a_panicked_node_as_worker_failure() {
    let field = PrimeField::new(1_048_583).expect("prime");
    let points: Vec<u64> = (0..24).collect();
    let plan = FaultPlan::all_honest(4);
    let spec = RoundSpec { field: &field, points: &points, plan: &plan };
    let eval = camelot::cluster::SingleEval(|x: u64| {
        assert!(x != 13, "injected node failure");
        x
    });
    let got = ChannelTransport::new().run(&spec, &eval);
    match got {
        Err(camelot::cluster::TransportError::WorkerFailed { .. }) => {}
        other => panic!("channel: expected WorkerFailed, got {other:?}"),
    }
}
