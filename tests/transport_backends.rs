//! Cross-backend transport regressions: every broadcast backend must
//! produce bit-identical rounds on the full fault matrix — honest,
//! crash, corrupt, adversarial, equivocate — and the engine must run
//! end to end on each of them.

use camelot::cluster::{
    ChannelTransport, ChaosEffect, ChaosPlan, EvalProgram, FailureCause, FaultKind, FaultPlan,
    InProcess, ProgramEval, RoundSpec, SocketTransport, Transport, TransportTuning,
};
use camelot::core::{
    Backend, CamelotError, CamelotProblem, Engine, EngineConfig, Evaluate, PrimeProof, ProofSpec,
    WorkerMode,
};
use camelot::ff::{crt_u, PrimeField, Residue};
use camelot::triangles::TriangleCount;
use std::sync::Arc;
use std::time::Duration;

/// One of each behaviour over 10 nodes — the full fault matrix.
fn full_matrix_plan(nodes: usize) -> FaultPlan {
    FaultPlan::with_faults(
        nodes,
        &[
            (1, FaultKind::Crash),
            (3, FaultKind::Corrupt { seed: 21 }),
            (5, FaultKind::Adversarial { offset: 9 }),
            (7, FaultKind::Equivocate { seed: 33 }),
        ],
    )
}

fn all_backends() -> Vec<(&'static str, Box<dyn Transport>)> {
    vec![
        ("inproc", Box::new(InProcess::new(false))),
        ("inproc-par", Box::new(InProcess::new(true))),
        ("channel", Box::new(ChannelTransport::new())),
        ("socket", Box::new(SocketTransport::loopback())),
    ]
}

/// The acceptance criterion of the transport refactor: all backends,
/// same multi-polynomial round, bit-identical broadcasts — consensus
/// word, assignment, every receiver's view, and traffic accounting.
#[test]
fn all_backends_produce_bit_identical_broadcasts() {
    let nodes = 10;
    let field = PrimeField::new(1_048_583).unwrap();
    let points: Vec<u64> = (0..64).collect();
    let plan = full_matrix_plan(nodes);
    let spec = RoundSpec { field: &field, points: &points, plan: &plan };
    let eval = ProgramEval::new(
        &field,
        vec![EvalProgram::Poly(vec![5, 0, 3, 1]), EvalProgram::Poly(vec![1_000_000, 999])],
    );

    let reference = InProcess::new(false).run(&spec, &eval).expect("reference round");
    for (name, transport) in all_backends() {
        let outcome = transport.run(&spec, &eval).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(outcome.broadcasts.len(), 2, "{name}");
        for (poly, (got, want)) in outcome.broadcasts.iter().zip(&reference.broadcasts).enumerate()
        {
            assert!(got.same_word(want), "{name}: polynomial {poly} word diverged");
            for receiver in 0..nodes {
                assert_eq!(
                    got.view_for(receiver),
                    want.view_for(receiver),
                    "{name}: polynomial {poly}, receiver {receiver}"
                );
            }
            let evals: Vec<usize> = got.stats.iter().map(|s| s.evaluations).collect();
            let want_evals: Vec<usize> = want.stats.iter().map(|s| s.evaluations).collect();
            assert_eq!(evals, want_evals, "{name}: polynomial {poly} work accounting");
        }
        assert_eq!(outcome.traffic, reference.traffic, "{name}: traffic accounting");
    }
}

/// Closure rounds (no wire program) must agree across the in-process
/// backends; the socket backend must refuse them rather than guess.
#[test]
fn closure_rounds_agree_where_supported() {
    let field = PrimeField::new(1_000_003).unwrap();
    let points: Vec<u64> = (0..40).collect();
    let plan = full_matrix_plan(8);
    let spec = RoundSpec { field: &field, points: &points, plan: &plan };
    let eval = camelot::cluster::SingleEval(|x: u64| field.mul(x, field.add(x, 3)));

    let reference = InProcess::new(false).run(&spec, &eval).unwrap();
    for transport in
        [Box::new(InProcess::new(true)) as Box<dyn Transport>, Box::new(ChannelTransport::new())]
    {
        let outcome = transport.run(&spec, &eval).unwrap();
        assert!(outcome.broadcasts[0].same_word(&reference.broadcasts[0]));
    }
    assert!(SocketTransport::loopback().run(&spec, &eval).is_err());
}

/// A wire-expressible problem: the proof polynomial is handed over as
/// explicit coefficients, so socket workers can reconstruct it from the
/// task message alone. The recovered answer is `P(0)` over the
/// integers.
struct WirePoly {
    coeffs: Vec<u64>,
}

struct WirePolyEval {
    field: PrimeField,
    coeffs: Vec<u64>,
}

impl Evaluate for WirePolyEval {
    fn eval(&self, x0: u64) -> u64 {
        EvalProgram::Poly(self.coeffs.clone()).eval(&self.field, x0)
    }

    fn program(&self) -> Option<EvalProgram> {
        Some(EvalProgram::Poly(self.coeffs.clone()))
    }
}

impl CamelotProblem for WirePoly {
    type Output = u128;

    fn spec(&self) -> ProofSpec {
        ProofSpec::new(self.coeffs.len() - 1, 1 << 20, 64)
    }

    fn evaluator<'a>(&'a self, field: &PrimeField) -> Box<dyn Evaluate + 'a> {
        let coeffs = self.coeffs.iter().map(|&c| field.reduce(c)).collect();
        Box::new(WirePolyEval { field: *field, coeffs })
    }

    fn recover(&self, proofs: &[PrimeProof]) -> Result<u128, CamelotError> {
        let residues: Vec<Residue> =
            proofs.iter().map(|p| Residue { modulus: p.modulus, value: p.eval(0) }).collect();
        crt_u(&residues)
            .to_u128()
            .ok_or_else(|| CamelotError::RecoveryFailed { reason: "value exceeded u128".into() })
    }
}

/// The engine pipeline — prepare, decode at all nodes, spot-check,
/// recover — must produce identical outcomes on every backend,
/// including real loopback sockets, under the full fault matrix.
#[test]
fn engine_outcomes_are_identical_across_backends() {
    let problem = WirePoly { coeffs: vec![123_456_789, 7, 0, 5] };
    // One point per node: 4 faulty nodes = 2 errors + 1 erasure + 1
    // equivocated error per view, well within f = 6.
    let d = problem.spec().degree_bound;
    let budget = 6;
    let nodes = d + 1 + 2 * budget;

    let outcome_for = |backend: Backend| {
        let config = EngineConfig::sequential(nodes, budget)
            .with_plan(full_matrix_plan(nodes))
            .with_full_decoding()
            .with_backend(backend);
        Engine::new(config).run(&problem).expect("run must tolerate the fault matrix")
    };

    let reference = outcome_for(Backend::InProcess);
    assert_eq!(reference.output, 123_456_789);
    assert_eq!(reference.certificate.identified_faulty_nodes, vec![3, 5, 7]);
    assert_eq!(reference.certificate.crashed_nodes, vec![1]);
    assert_eq!(reference.report.rounds, reference.report.primes.len());
    assert!(reference.report.symbols_broadcast > 0);
    assert!(reference.report.bytes_on_wire > 0);

    for backend in [Backend::Channel, Backend::Socket(WorkerMode::Threads)] {
        let outcome = outcome_for(backend.clone());
        assert_eq!(outcome.output, reference.output, "{backend:?}");
        assert_eq!(outcome.certificate, reference.certificate, "{backend:?}");
        assert_eq!(
            outcome.report.symbols_broadcast, reference.report.symbols_broadcast,
            "{backend:?}"
        );
        assert_eq!(outcome.report.bytes_on_wire, reference.report.bytes_on_wire, "{backend:?}");
    }
}

/// A crash-fault plan pins the erasure set: every decider punctures the
/// same positions, so the first decode builds the punctured point tree
/// cold and the rest hit the keyed cache warm. The decoded proof must be
/// bit-identical across deciders (the engine's disagreement check runs
/// on every pair) and across all three transport backends, and the new
/// decode/xgcd observability counters must attribute nonzero time.
#[test]
fn crash_fault_erasure_decoding_is_identical_across_backends() {
    let problem = WirePoly { coeffs: vec![987_654_321, 11, 3, 0, 2] };
    let d = problem.spec().degree_bound;
    let budget = 5;
    let nodes = d + 1 + 2 * budget;
    // Crashes only: the erasure set is fixed and identical in every
    // decider's view, so warm cache hits recur within each run.
    let crashes: Vec<(usize, FaultKind)> =
        [2, 6, 9].iter().map(|&n| (n, FaultKind::Crash)).collect();
    let plan = FaultPlan::with_faults(nodes, &crashes);

    let outcome_for = |backend: Backend| {
        let config = EngineConfig::sequential(nodes, budget)
            .with_plan(plan.clone())
            .with_full_decoding()
            .with_backend(backend);
        Engine::new(config).run(&problem).expect("crash plan within budget must decode")
    };

    let reference = outcome_for(Backend::InProcess);
    assert_eq!(reference.output, 987_654_321);
    assert_eq!(reference.certificate.crashed_nodes, vec![2, 6, 9]);
    assert!(reference.certificate.identified_faulty_nodes.is_empty());
    assert!(
        reference.report.decode_time >= reference.report.xgcd_time,
        "xgcd time is a sub-phase of decode time"
    );
    assert!(
        reference.report.decode_time.as_nanos() > 0,
        "full decoding across deciders must accumulate decode time"
    );

    for backend in [Backend::Channel, Backend::Socket(WorkerMode::Threads)] {
        let outcome = outcome_for(backend.clone());
        assert_eq!(outcome.output, reference.output, "{backend:?}");
        assert_eq!(outcome.certificate, reference.certificate, "{backend:?}");
    }
}

/// One of each transport-level chaos effect over 10 honest nodes. The
/// I/O deadline is far below the historical 60 s so hangs and oversize
/// delays resolve quickly (and identically: the delivery-versus-
/// demotion decision compares configured numbers, never wall clock).
fn full_chaos_plan(nodes: usize) -> ChaosPlan {
    ChaosPlan::with_effects(
        nodes,
        &[
            (0, ChaosEffect::Delay { millis: 5 }),
            (1, ChaosEffect::DropFrame),
            (2, ChaosEffect::Truncate { seed: 7 }),
            (3, ChaosEffect::Garble { seed: 9 }),
            (4, ChaosEffect::Duplicate),
            (5, ChaosEffect::Reset),
            (6, ChaosEffect::Hang),
        ],
    )
    .expect("all nodes in range")
}

fn chaos_tuning() -> TransportTuning {
    TransportTuning::default().with_io_deadline(Duration::from_millis(300))
}

/// The tentpole acceptance criterion: a seeded chaos plan is injected
/// *identically* by all four backends — the in-process simulation, the
/// channel threads, one-shot loopback sockets, and the persistent
/// socket pool all deliver bit-identical broadcasts, the same demotion
/// list (same nodes, same structured causes), and the same traffic
/// accounting.
#[test]
fn chaos_rounds_are_bit_identical_across_all_four_backends() {
    let nodes = 10;
    let field = PrimeField::new(1_048_583).unwrap();
    let points: Vec<u64> = (0..nodes as u64).collect();
    let plan = FaultPlan::all_honest(nodes);
    let spec = RoundSpec { field: &field, points: &points, plan: &plan };
    let eval = ProgramEval::new(
        &field,
        vec![EvalProgram::Poly(vec![5, 0, 3, 1]), EvalProgram::Poly(vec![1_000_000, 999])],
    );
    let chaos = full_chaos_plan(nodes);
    let tuning = chaos_tuning();

    let backends: Vec<(&str, Box<dyn Transport>)> = vec![
        (
            "inproc",
            Box::new(
                InProcess::new(false).with_tuning(tuning.clone()).with_chaos(Some(chaos.clone())),
            ),
        ),
        (
            "inproc-par",
            Box::new(
                InProcess::new(true).with_tuning(tuning.clone()).with_chaos(Some(chaos.clone())),
            ),
        ),
        (
            "channel",
            Box::new(
                ChannelTransport::new().with_tuning(tuning.clone()).with_chaos(Some(chaos.clone())),
            ),
        ),
        (
            "socket",
            Box::new(
                SocketTransport::loopback()
                    .with_tuning(tuning.clone())
                    .with_chaos(Some(chaos.clone())),
            ),
        ),
        (
            "socket-pool",
            Box::new(
                SocketTransport::persistent(WorkerMode::Threads)
                    .with_tuning(tuning.clone())
                    .with_chaos(Some(chaos.clone())),
            ),
        ),
    ];

    let reference = InProcess::new(false)
        .with_tuning(tuning.clone())
        .with_chaos(Some(chaos.clone()))
        .run(&spec, &eval)
        .expect("reference chaos round");
    // Dropped, reset, hung, and truncated senders are demoted with
    // their structured causes; garble and within-deadline delay are not
    // demotions (their frames arrive and parse).
    let expected: Vec<(usize, FailureCause)> =
        reference.demotions.iter().map(|demotion| (demotion.node, demotion.cause)).collect();
    assert_eq!(
        expected,
        vec![
            (1, FailureCause::Reset),
            (2, FailureCause::Protocol),
            (5, FailureCause::Reset),
            (6, FailureCause::Timeout),
        ]
    );

    for (name, transport) in backends {
        let outcome = transport.run(&spec, &eval).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(outcome.demotions, reference.demotions, "{name}: demotion list diverged");
        assert_eq!(outcome.traffic, reference.traffic, "{name}: traffic accounting diverged");
        for (poly, (got, want)) in outcome.broadcasts.iter().zip(&reference.broadcasts).enumerate()
        {
            assert!(got.same_word(want), "{name}: polynomial {poly} word diverged");
            for receiver in 0..nodes {
                assert_eq!(
                    got.view_for(receiver),
                    want.view_for(receiver),
                    "{name}: polynomial {poly}, receiver {receiver}"
                );
            }
        }
    }
}

/// Within the decoding radius, chaos costs nothing but redundancy: the
/// decoded proofs and the recovered output are bit-identical to the
/// chaos-free run, the garbled node is identified as faulty, demoted
/// nodes land among the crashed, and the recovery counters account for
/// the noise — identically on every backend, persistent pool included.
#[test]
fn engine_absorbs_chaos_within_radius_identically_across_backends() {
    let problem = WirePoly { coeffs: vec![123_456_789, 7, 0, 5] };
    let d = problem.spec().degree_bound;
    let budget = 6;
    let nodes = d + 1 + 2 * budget; // 16 nodes, one point each
    let chaos = ChaosPlan::with_effects(
        nodes,
        &[
            (3, ChaosEffect::Garble { seed: 11 }),  // 1 error
            (5, ChaosEffect::Truncate { seed: 4 }), // erasure (Protocol)
            (7, ChaosEffect::Hang),                 // erasure (Timeout)
            (9, ChaosEffect::DropFrame),            // erasure (Reset)
        ],
    )
    .expect("nodes in range");
    // 2 errors + 3 erasures = 5 <= e - d - 1 = 12: inside the radius.

    let config = |backend: Backend| {
        EngineConfig::sequential(nodes, budget).with_backend(backend).with_tuning(chaos_tuning())
    };
    let clean = Engine::new(config(Backend::InProcess)).run(&problem).expect("chaos-free run");

    let chaotic = |backend: Backend| {
        Engine::new(config(backend).with_chaos(chaos.clone()))
            .run(&problem)
            .expect("chaos within the radius must decode")
    };
    let reference = chaotic(Backend::InProcess);

    // The certificate proves the same statement the chaos-free run
    // proved — same proofs, same output, same code parameters.
    assert_eq!(reference.output, clean.output);
    assert_eq!(reference.certificate.proofs, clean.certificate.proofs);
    assert_eq!(reference.certificate.code_length, clean.certificate.code_length);
    assert_eq!(reference.certificate.degree_bound, clean.certificate.degree_bound);
    // The noise is identified, not tolerated silently.
    assert_eq!(reference.certificate.identified_faulty_nodes, vec![3]);
    assert_eq!(reference.certificate.crashed_nodes, vec![5, 7, 9]);
    let primes = reference.report.primes.len();
    assert_eq!(reference.report.erasures_seen, 3 * primes);
    assert_eq!(reference.report.errors_corrected, primes);
    assert_eq!(
        reference.report.demotions.iter().map(|demotion| demotion.node).collect::<Vec<_>>(),
        vec![5, 7, 9]
    );

    for backend in [Backend::Channel, Backend::Socket(WorkerMode::Threads)] {
        let outcome = chaotic(backend.clone());
        assert_eq!(outcome.output, reference.output, "{backend:?}");
        assert_eq!(outcome.certificate, reference.certificate, "{backend:?}");
        assert_eq!(outcome.report.demotions, reference.report.demotions, "{backend:?}");
        assert_eq!(outcome.report.erasures_seen, reference.report.erasures_seen, "{backend:?}");
        assert_eq!(
            outcome.report.errors_corrected, reference.report.errors_corrected,
            "{backend:?}"
        );
    }

    // The persistent pool (engine-shared transport) sees the same round.
    let pool = SocketTransport::persistent(WorkerMode::Threads)
        .with_tuning(chaos_tuning())
        .with_chaos(Some(chaos));
    let engine =
        Engine::with_transport(EngineConfig::sequential(nodes, budget), Arc::new(pool.clone()));
    let outcome = engine.run(&problem).expect("pool absorbs chaos");
    assert_eq!(outcome.output, reference.output, "socket-pool");
    assert_eq!(outcome.certificate, reference.certificate, "socket-pool");
    assert_eq!(outcome.report.demotions, reference.report.demotions, "socket-pool");
    pool.shutdown_pool().expect("clean pool shutdown");
}

/// Problems whose evaluators are opaque closures cannot run on the
/// socket backend — the engine must say so, not hang or mis-evaluate.
#[test]
fn socket_engine_rejects_closure_problems() {
    let g = camelot::graph::gen::petersen();
    let problem = TriangleCount::new(&g);
    let config = EngineConfig::sequential(4, 2).with_backend(Backend::Socket(WorkerMode::Threads));
    match Engine::new(config).run(&problem) {
        Err(CamelotError::TransportFailed { reason }) => {
            assert!(reason.contains("wire-expressible"), "unexpected reason: {reason}");
        }
        other => panic!("expected TransportFailed, got {other:?}"),
    }
}

/// A panicking evaluation closure must surface as a reported
/// `WorkerFailed` refusal on the threaded backends, never abort the
/// coordinator — the same guarantee the socket worker gives for hostile
/// frames, kept panic-free end to end by camelot-lint's `panic-path` rule.
#[test]
fn threaded_backends_report_a_panicked_node_as_worker_failure() {
    let field = PrimeField::new(1_048_583).expect("prime");
    let points: Vec<u64> = (0..24).collect();
    let plan = FaultPlan::all_honest(4);
    let spec = RoundSpec { field: &field, points: &points, plan: &plan };
    let eval = camelot::cluster::SingleEval(|x: u64| {
        assert!(x != 13, "injected node failure");
        x
    });
    let got = ChannelTransport::new().run(&spec, &eval);
    match got {
        Err(camelot::cluster::TransportError::WorkerFailed { .. }) => {}
        other => panic!("channel: expected WorkerFailed, got {other:?}"),
    }
}
