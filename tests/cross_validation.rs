//! Cross-validation: independent implementations of the same quantity
//! must agree (the strongest correctness signal the repo has).

use camelot::cliques::{count_cliques_circuit, count_cliques_nesetril_poljak};
use camelot::core::Engine;
use camelot::ff::{next_prime, IBig, PrimeField};
use camelot::graph::{
    chromatic::chromatic_value_mod,
    count_k_cliques, count_triangles, gen,
    tutte::{eval_tutte_mod, tutte_coefficients},
    MultiGraph,
};
use camelot::linalg::MatMulTensor;
use camelot::partition::{chromatic_polynomial, eval_integer, tutte_polynomial};
use camelot::triangles::{count_triangles_ayz, TriangleSplit};

#[test]
fn four_triangle_counters_agree() {
    let tensor = MatMulTensor::strassen();
    for seed in 0..5 {
        for m in [15usize, 40, 80] {
            let g = gen::gnm(14, m, seed);
            let bitset = count_triangles(&g);
            let ayz = count_triangles_ayz(&g, &tensor).triangles;
            let split = TriangleSplit::new(&g, &tensor);
            let q = next_prime(((split.padded_size() as u64).pow(3) + 1).max(1 << 20));
            let field = PrimeField::new(q).unwrap();
            let trace = split.count_triangles(&field);
            let k3 = count_k_cliques(&g, 3);
            assert_eq!(bitset, ayz, "seed {seed} m {m}");
            assert_eq!(bitset, trace, "seed {seed} m {m}");
            assert_eq!(bitset, k3, "seed {seed} m {m}");
        }
    }
}

#[test]
fn three_clique_counters_agree() {
    let tensor = MatMulTensor::strassen();
    for seed in 0..3 {
        let g = gen::gnp(8, u32::MAX / 10 * 9, seed);
        let brute = count_k_cliques(&g, 6);
        assert_eq!(count_cliques_nesetril_poljak(&g, 6).to_u64(), Some(brute), "seed {seed}");
        assert_eq!(count_cliques_circuit(&g, 6, &tensor).to_u64(), Some(brute), "seed {seed}");
    }
}

#[test]
fn chromatic_three_ways() {
    // Camelot interpolated polynomial vs the 2^n inclusion–exclusion
    // oracle vs the Tutte specialization χ(t) = (-1)^{n-c} t^c T(1-t, 0).
    let field = PrimeField::new(1_000_000_007).unwrap();
    let engine = Engine::sequential(4, 2);
    for g in [gen::cycle(6), gen::gnm(7, 12, 8)] {
        let outcome = chromatic_polynomial(&g, &engine).unwrap();
        let mg = MultiGraph::from_graph(&g);
        let tutte = tutte_coefficients(&mg);
        let n = g.vertex_count() as u64;
        let c = mg.component_count() as u64;
        for t in 1..=4u64 {
            let via_camelot = {
                let v = eval_integer(&outcome.coefficients, t as i64);
                v.rem_euclid_u64(field.modulus())
            };
            let via_ie = chromatic_value_mod(&g, t, &field);
            let via_tutte = {
                let x = field.from_i64(1 - t as i64);
                let tv = eval_tutte_mod(&tutte, x, 0, &field);
                let mut val = field.mul(field.pow(t, c), tv);
                if (n - c) % 2 == 1 {
                    val = field.neg(val);
                }
                val
            };
            assert_eq!(via_camelot, via_ie, "graph {g} t {t}");
            assert_eq!(via_camelot, via_tutte, "graph {g} t {t}");
        }
    }
}

#[test]
fn tutte_specializations_count_structures() {
    // T(1,1) = spanning trees; T(2,1) = forests; T(1,2) = connected
    // spanning subgraphs; T(2,2) = 2^m — all from the Camelot pipeline.
    let engine = Engine::sequential(3, 2);
    let g = gen::cycle(5); // 5 spanning trees, 2^5 subsets
    let mg = MultiGraph::from_graph(&g);
    let outcome = tutte_polynomial(&mg, &engine).unwrap();
    let eval = |x: i64, y: i64| -> i64 {
        camelot::partition::eval_tutte(&outcome.coefficients, x, y).to_i64().unwrap()
    };
    assert_eq!(eval(1, 1), 5, "spanning trees of C5");
    assert_eq!(eval(2, 2), 32, "2^m");
    // forests of C5: all 2^5 - 1 proper subsets are acyclic = 31.
    assert_eq!(eval(2, 1), 31, "spanning forests");
    assert_eq!(eval(1, 2), 6, "connected spanning subgraphs (C5 itself + 5 paths)");
}

#[test]
fn permanent_of_01_matrices_counts_perfect_matchings() {
    // The permanent of a bipartite adjacency matrix counts perfect
    // matchings; cross-check against Hamiltonian-cycle-free structure:
    // K_{3,3}'s bipartite adjacency (all ones 3x3) has per = 3! = 6.
    use camelot::algebraic::Permanent;
    let p = Permanent::new(3, vec![1; 9]);
    assert_eq!(p.reference_permanent(), IBig::from_i64(6));
    let outcome = Engine::sequential(3, 2).run(&p).unwrap();
    assert_eq!(outcome.output, IBig::from_i64(6));
}

#[test]
fn hamming_marginals_match_ov() {
    // c_{i,0} with B vs OV count with B-complement: distance 0 rows are
    // exactly equal rows; cross-check h-sums against n.
    use camelot::algebraic::{BoolMatrix, HammingDistribution};
    let a = BoolMatrix::random(6, 4, 50, 3);
    let b = BoolMatrix::random(6, 4, 50, 4);
    let problem = HammingDistribution::new(a.clone(), b.clone());
    let dist = Engine::sequential(3, 2).run(&problem).unwrap().output;
    for (i, row) in dist.iter().enumerate() {
        assert_eq!(row.iter().sum::<u64>(), 6, "row {i} sums to n");
        // distance-0 count = number of identical rows of B.
        let equal = (0..6).filter(|&k| (0..4).all(|j| a.get(i, j) == b.get(k, j))).count() as u64;
        assert_eq!(row[0], equal, "row {i} distance-0 count");
    }
}
