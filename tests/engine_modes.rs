//! Engine-level execution-mode regressions: the threaded cluster must be
//! observationally identical to the sequential one under fault injection,
//! batched runs must recover exactly what per-problem runs recover, and
//! a batch must share one broadcast round per prime across its problems.

use camelot::cluster::{FaultKind, FaultPlan};
use camelot::core::{Backend, CamelotProblem, Engine, EngineConfig};
use camelot::graph::{count_triangles, gen};
use camelot::triangles::TriangleCount;

fn faulty_config(nodes: usize, budget: usize, parallel: bool) -> EngineConfig {
    let plan = FaultPlan::with_faults(
        nodes,
        &[(1, FaultKind::Corrupt { seed: 42 }), (4, FaultKind::Crash)],
    );
    let base = if parallel {
        EngineConfig::parallel(nodes, budget)
    } else {
        EngineConfig::sequential(nodes, budget)
    };
    base.with_plan(plan).with_full_decoding()
}

/// Full `Engine::run` (not just `run_round`) must agree between the
/// sequential and threaded cluster backends: same recovered output, same
/// certificate, and the byzantine + crashed nodes identified identically.
#[test]
fn parallel_engine_matches_sequential_under_faults() {
    let g = gen::gnm(12, 30, 11);
    let problem = TriangleCount::new(&g);
    let budget = problem.spec().degree_bound.max(16);

    let seq = Engine::new(faulty_config(8, budget, false)).run(&problem).expect("sequential");
    let par = Engine::new(faulty_config(8, budget, true)).run(&problem).expect("parallel");

    assert_eq!(seq.output, count_triangles(&g));
    assert_eq!(seq.output, par.output);
    assert_eq!(seq.certificate, par.certificate);
    assert_eq!(seq.certificate.identified_faulty_nodes, vec![1]);
    assert_eq!(seq.certificate.crashed_nodes, vec![4]);
    assert_eq!(seq.report.total_evaluations, par.report.total_evaluations);
    assert_eq!(seq.report.max_node_evaluations, par.report.max_node_evaluations);
}

/// `Engine::run_batch` recovers exactly the per-problem `Engine::run`
/// outputs, while sharing one prime/code-length derivation per batch.
#[test]
fn batch_output_matches_individual_runs() {
    let graphs = [gen::gnm(10, 20, 3), gen::gnm(14, 40, 5), gen::petersen()];
    let problems: Vec<TriangleCount> = graphs.iter().map(TriangleCount::new).collect();
    let engine = Engine::sequential(6, 8);

    let batched = engine.run_batch(&problems).expect("batch run");
    assert_eq!(batched.len(), problems.len());
    for ((problem, outcome), graph) in problems.iter().zip(&batched).zip(&graphs) {
        let solo = engine.run(problem).expect("solo run");
        assert_eq!(outcome.output, solo.output);
        assert_eq!(outcome.output, count_triangles(graph));
        assert!(outcome.certificate.identified_faulty_nodes.is_empty());
        assert!(outcome.certificate.crashed_nodes.is_empty());
    }
    // The amortized setup is shared: one prime set, one code length.
    assert!(batched.windows(2).all(|w| w[0].report.primes == w[1].report.primes));
    assert!(batched.windows(2).all(|w| w[0].report.code_length == w[1].report.code_length));
}

/// The batch-shared-rounds acceptance criterion: `run_batch` performs
/// exactly one broadcast round per prime for the whole batch (observed
/// via the `RunReport` round counters), while still recovering outputs
/// identical to per-problem runs.
#[test]
fn batch_shares_one_broadcast_round_per_prime() {
    let graphs = [gen::gnm(10, 22, 2), gen::gnm(12, 30, 4), gen::petersen()];
    let problems: Vec<TriangleCount> = graphs.iter().map(TriangleCount::new).collect();
    let engine = Engine::sequential(6, 8);

    let batched = engine.run_batch(&problems).expect("batch run");
    let shared = &batched[0].report;
    // One round per prime — for the batch, not per problem: every
    // outcome records the same shared counters.
    assert_eq!(shared.rounds, shared.primes.len());
    for outcome in &batched {
        assert_eq!(outcome.report.rounds, shared.rounds);
        assert_eq!(outcome.report.symbols_broadcast, shared.symbols_broadcast);
        assert_eq!(outcome.report.bytes_on_wire, shared.bytes_on_wire);
    }
    // The shared round carries one symbol per problem per point: on an
    // all-honest plan that is exactly `batch size × e` per prime.
    assert_eq!(shared.symbols_broadcast, problems.len() * shared.code_length * shared.primes.len());
    // A solo run of the first problem over the same parameters
    // broadcasts a third of the symbols in the same number of rounds.
    let solo = engine.run(&problems[0]).expect("solo run");
    assert_eq!(solo.report.rounds, solo.report.primes.len());
    assert_eq!(solo.report.symbols_broadcast, solo.report.code_length * solo.report.primes.len());
    assert_eq!(solo.output, batched[0].output);
}

/// The engine over the channel backend (per-node OS threads, mpsc
/// frames only) must be observationally identical to the in-process
/// bus, faults included.
#[test]
fn channel_backend_engine_matches_in_process() {
    let g = gen::gnm(11, 26, 17);
    let problem = TriangleCount::new(&g);
    let budget = problem.spec().degree_bound.max(16);

    let inproc = Engine::new(faulty_config(8, budget, false)).run(&problem).expect("inproc");
    let channel_config = faulty_config(8, budget, false).with_backend(Backend::Channel);
    let channel = Engine::new(channel_config).run(&problem).expect("channel");

    assert_eq!(inproc.output, channel.output);
    assert_eq!(inproc.certificate, channel.certificate);
    assert_eq!(inproc.report.total_evaluations, channel.report.total_evaluations);
    assert_eq!(inproc.report.symbols_broadcast, channel.report.symbols_broadcast);
    assert_eq!(inproc.report.bytes_on_wire, channel.report.bytes_on_wire);
}

/// Batched runs identify faulty nodes exactly like per-problem runs.
#[test]
fn batch_identifies_faults_like_individual_runs() {
    let problems: Vec<TriangleCount> =
        [gen::gnm(9, 16, 7), gen::gnm(11, 24, 9)].iter().map(TriangleCount::new).collect();
    let budget = problems.iter().map(|p| p.spec().degree_bound).max().unwrap().max(16);
    let engine = Engine::new(faulty_config(8, budget, false));

    let batched = engine.run_batch(&problems).expect("batch run");
    for (problem, outcome) in problems.iter().zip(&batched) {
        let solo = engine.run(problem).expect("solo run");
        assert_eq!(outcome.output, solo.output);
        assert_eq!(outcome.certificate.identified_faulty_nodes, vec![1]);
        assert_eq!(outcome.certificate.crashed_nodes, vec![4]);
    }
}

/// An empty batch is a no-op, not an error.
#[test]
fn empty_batch_is_ok() {
    let engine = Engine::sequential(4, 2);
    let outcomes = engine.run_batch::<TriangleCount>(&[]).expect("empty batch");
    assert!(outcomes.is_empty());
}
