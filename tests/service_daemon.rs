//! The service layer end to end: coalescing of concurrent requests onto
//! shared broadcast rounds, zero-round cache hits with bit-identical
//! certificates, worker-failure recovery, and the TCP daemon loop.

use camelot::core::{ChaosEffect, ChaosPlan, FailureCause, WorkerMode};
use camelot::server::{request, run_daemon, PolyRequest, Request, Service, ServiceConfig};
use std::net::TcpListener;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

fn poly(coefficients: Vec<u64>) -> PolyRequest {
    PolyRequest {
        coefficients,
        sum_count: 16,
        value_bits: 60,
        min_modulus: 1 << 20,
        schedule: camelot::core::PrimeSchedule::Smallest,
    }
}

/// `Σ_{x=0}^{n-1} P(x)` computed directly, the reference answer.
fn poly_sum(coefficients: &[u64], n: u64) -> u128 {
    (0..n)
        .map(|x| {
            coefficients.iter().rev().fold(0u128, |acc, &c| acc * u128::from(x) + u128::from(c))
        })
        .sum()
}

fn service(batch_window_ms: u64) -> Arc<Service> {
    let config = ServiceConfig {
        workers: WorkerMode::Threads,
        batch_window: Duration::from_millis(batch_window_ms),
        ..ServiceConfig::default()
    };
    Arc::new(Service::new(config).unwrap())
}

#[test]
fn concurrent_requests_share_one_batch_of_rounds() {
    let service = service(400);
    let barrier = Arc::new(Barrier::new(2));
    let polys = [poly(vec![3, 1, 4]), poly(vec![1, 5, 9, 2])];
    let handles: Vec<_> = polys
        .iter()
        .map(|p| {
            let (service, barrier, p) = (Arc::clone(&service), Arc::clone(&barrier), p.clone());
            thread::spawn(move || {
                barrier.wait();
                service.prepare(&p).unwrap()
            })
        })
        .collect();
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for (p, outcome) in polys.iter().zip(&outcomes) {
        assert_eq!(outcome.output, poly_sum(&p.coefficients, p.sum_count));
        assert_eq!(
            outcome.report.coalesced_requests, 2,
            "both requests must land in one admission batch"
        );
        assert_eq!(outcome.report.cache_hits, 0);
    }
    // The batch shares its per-prime rounds: both requests report the
    // same round count R, and the two solo runs below each pay at least
    // R on their own — so the coalesced total R is strictly less than
    // the sum of solo runs.
    let shared_rounds = outcomes[0].report.rounds;
    assert_eq!(outcomes[1].report.rounds, shared_rounds);
    assert!(shared_rounds > 0);
    let solo: usize = [poly(vec![2, 7, 1]), poly(vec![8, 2, 8, 1])]
        .iter()
        .map(|p| {
            let outcome = service.prepare(p).unwrap();
            assert_eq!(outcome.report.coalesced_requests, 1);
            outcome.report.rounds
        })
        .sum();
    assert!(
        shared_rounds < solo,
        "coalesced rounds ({shared_rounds}) must undercut solo total ({solo})"
    );
    service.shutdown().unwrap();
}

#[test]
fn repeat_query_is_served_from_the_store_with_zero_rounds() {
    let service = service(5);
    let p = poly(vec![2, 0, 0, 0, 3]);
    let first = service.prepare(&p).unwrap();
    assert!(first.report.rounds > 0);
    assert_eq!(first.report.cache_hits, 0);
    let second = service.prepare(&p).unwrap();
    assert_eq!(second.report.rounds, 0, "cache hit must run no rounds");
    assert_eq!(second.report.cache_hits, 1);
    assert!(second.report.verification_evaluations > 0, "redeem still spot-checks");
    assert_eq!(second.output, first.output);
    assert_eq!(
        second.certificate.to_wire(),
        first.certificate.to_wire(),
        "the served certificate is bit-identical to the prepared one"
    );
    // A different polynomial is a different content address: miss.
    let other = service.prepare(&poly(vec![2, 0, 0, 0, 4])).unwrap();
    assert!(other.report.rounds > 0);
    service.shutdown().unwrap();
}

#[test]
fn killed_worker_is_respawned_and_service_recovers() {
    let service = service(5);
    let first = service.prepare(&poly(vec![6, 6, 6])).unwrap();
    assert!(first.report.rounds > 0);
    service.crash_worker(1).unwrap();
    // The next batch hits the dead worker, records the failure, repairs
    // the pool, and retries — the caller just sees a success.
    let second = service.prepare(&poly(vec![7, 7, 7])).unwrap();
    assert_eq!(second.output, poly_sum(&[7, 7, 7], 16));
    let status = service.status();
    assert!(status.worker_failures >= 1, "the kill must be recorded");
    assert!(status.respawns >= 1, "the pool must have respawned the worker");
    service.shutdown().unwrap();
}

#[test]
fn hung_worker_is_demoted_within_the_deadline_and_the_round_still_decodes() {
    // Node 1 hangs mid-round on every round. The coordinator's 300 ms
    // io deadline — far below the historical 60 s socket timeout —
    // demotes it to a crash erasure, and with f = 1 the decoder reads
    // straight through the hole. The caller just sees a success.
    let config = ServiceConfig {
        workers: WorkerMode::Threads,
        batch_window: Duration::from_millis(5),
        io_deadline: Some(Duration::from_millis(300)),
        demote_dead_workers: true,
        chaos: Some(ChaosPlan::with_effects(4, &[(1, ChaosEffect::Hang)]).unwrap()),
        ..ServiceConfig::default()
    };
    let service = Arc::new(Service::new(config).unwrap());
    let p = poly(vec![4, 0, 9]);
    let started = Instant::now();
    let outcome = service.prepare(&p).unwrap();
    let elapsed = started.elapsed();
    assert_eq!(outcome.output, poly_sum(&p.coefficients, p.sum_count));
    assert!(
        elapsed < Duration::from_secs(10),
        "a hung worker must not stall the round anywhere near the old 60 s \
         timeout (took {elapsed:?})"
    );
    assert!(
        outcome.report.demotions.iter().any(|d| d.node == 1 && d.cause == FailureCause::Timeout),
        "the hang must surface as a structured timeout demotion, got {:?}",
        outcome.report.demotions
    );
    assert!(outcome.report.erasures_seen > 0, "the demotion must decode as an erasure");
    assert!(outcome.certificate.crashed_nodes.contains(&1));
    service.shutdown().unwrap();
}

#[test]
fn daemon_serves_prepare_verify_status_and_shuts_down() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let service = service(5);
    let daemon = thread::spawn(move || run_daemon(&listener, &service));
    let p = poly(vec![1, 2, 3]);

    let prepared = request(&addr, &Request::Prepare(p.clone())).unwrap();
    assert!(prepared.ok, "{:?}", prepared.error);
    assert_eq!(prepared.output, Some(poly_sum(&p.coefficients, p.sum_count)));
    assert!(prepared.rounds > 0);
    let certificate = prepared.certificate.clone().unwrap();

    // Round-trip the certificate through the verify verb: no rounds.
    let verified =
        request(&addr, &Request::Verify { poly: p.clone(), certificate: certificate.clone() })
            .unwrap();
    assert!(verified.ok, "{:?}", verified.error);
    assert_eq!(verified.output, prepared.output);
    assert_eq!(verified.rounds, 0);

    // A tampered certificate must be rejected, not crash the daemon.
    // Bump the top coefficient of the first prime proof.
    let tampered: String = certificate
        .lines()
        .map(|line| {
            if line.starts_with("proof ") {
                let mut tokens: Vec<String> = line.split(' ').map(str::to_string).collect();
                if let Some(last) = tokens.last_mut() {
                    *last = (last.parse::<u64>().unwrap() + 1).to_string();
                }
                format!("{}\n", tokens.join(" "))
            } else {
                format!("{line}\n")
            }
        })
        .collect();
    let rejected = request(&addr, &Request::Verify { poly: p.clone(), certificate: tampered });
    assert!(rejected.is_err() || !rejected.unwrap().ok);

    // Repeat prepare: served from the store.
    let repeat = request(&addr, &Request::Prepare(p.clone())).unwrap();
    assert!(repeat.ok);
    assert_eq!(repeat.rounds, 0);
    assert!(repeat.cache_hit);
    assert_eq!(repeat.certificate, Some(certificate));

    let status = request(&addr, &Request::Status).unwrap();
    assert!(status.ok);
    assert!(status.requests >= 3);
    assert!(status.store_hits >= 1);
    assert!(status.workers > 0);

    let bye = request(&addr, &Request::Shutdown).unwrap();
    assert!(bye.ok);
    daemon.join().unwrap().unwrap();
}
