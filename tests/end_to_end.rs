//! Cross-crate integration: the full prepare → corrupt → decode → verify
//! → recover pipeline for each theorem family, under fault injection.

use camelot::algebraic::{BoolMatrix, CnfFormula, CountCnfSat, OrthogonalVectors, Permanent};
use camelot::cliques::KCliqueCount;
use camelot::cluster::{FaultKind, FaultPlan};
use camelot::core::{CamelotError, CamelotProblem, Engine, EngineConfig};
use camelot::graph::{count_k_cliques, count_triangles, gen};
use camelot::partition::{ChromaticValue, SetPartitions};
use camelot::triangles::TriangleCount;

/// Generic byzantine round-trip driver: runs with a crash and a corrupt
/// node at generous redundancy and checks the verdicts.
fn byzantine_roundtrip<P: CamelotProblem>(problem: &P, budget: usize) -> P::Output {
    let nodes = 8usize;
    let plan = FaultPlan::with_faults(
        nodes,
        &[(1, FaultKind::Corrupt { seed: 99 }), (6, FaultKind::Crash)],
    );
    let config = EngineConfig::sequential(nodes, budget).with_plan(plan).with_full_decoding();
    let outcome = Engine::new(config).run(problem).expect("within radius");
    assert_eq!(outcome.certificate.identified_faulty_nodes, vec![1]);
    assert_eq!(outcome.certificate.crashed_nodes, vec![6]);
    outcome.output
}

#[test]
fn triangles_survive_byzantine_round() {
    let g = gen::gnm(12, 28, 5);
    let problem = TriangleCount::new(&g);
    // Each of 8 nodes owns ~e/8 symbols; budget for 2 whole slices.
    let d = problem.spec().degree_bound;
    let out = byzantine_roundtrip(&problem, d.max(16));
    assert_eq!(out, count_triangles(&g));
}

#[test]
fn orthogonal_vectors_survive_byzantine_round() {
    let a = BoolMatrix::random(9, 5, 40, 1);
    let b = BoolMatrix::random(9, 5, 40, 2);
    let problem = OrthogonalVectors::new(a, b);
    let d = problem.spec().degree_bound;
    let out = byzantine_roundtrip(&problem, d.max(16));
    assert_eq!(out, problem.reference_counts());
}

#[test]
fn permanent_survives_byzantine_round() {
    let problem = Permanent::random(6, 3, 31);
    let d = problem.spec().degree_bound;
    let out = byzantine_roundtrip(&problem, d.max(16));
    assert_eq!(out, problem.reference_permanent());
}

#[test]
fn chromatic_survives_byzantine_round() {
    let g = gen::gnm(8, 14, 2);
    let problem = ChromaticValue::new(g.clone(), 3);
    let d = problem.spec().degree_bound;
    let out = byzantine_roundtrip(&problem, d.max(16));
    let field = camelot::ff::PrimeField::new(1_000_000_007).unwrap();
    assert_eq!(
        out.rem_u64(field.modulus()),
        camelot::graph::chromatic::chromatic_value_mod(&g, 3, &field)
    );
}

#[test]
fn kclique_survives_byzantine_round() {
    let g = gen::planted_clique(7, 6, 6, 4);
    let expect = count_k_cliques(&g, 6);
    let problem = KCliqueCount::new(g, 6);
    let d = problem.spec().degree_bound;
    let out = byzantine_roundtrip(&problem, d.max(16));
    assert_eq!(out.to_u64(), Some(expect));
}

#[test]
fn cnf_survives_byzantine_round() {
    let formula = CnfFormula::random_ksat(8, 12, 3, 17);
    let expect = formula.count_solutions_brute();
    let problem = CountCnfSat::new(formula);
    let d = problem.spec().degree_bound;
    let out = byzantine_roundtrip(&problem, d.max(16));
    assert_eq!(out.to_u64(), Some(expect));
}

#[test]
fn setpartitions_survive_byzantine_round() {
    let family: Vec<u64> = (1..64).collect();
    let problem = SetPartitions::new(6, family, 3);
    let d = problem.spec().degree_bound;
    let out = byzantine_roundtrip(&problem, d.max(16));
    assert_eq!(out.to_u64(), Some(90)); // S(6,3)
}

#[test]
fn overwhelming_faults_are_detected_not_miscomputed() {
    // Corrupt 7 of 8 nodes: decoding MUST fail (never silently wrong).
    let g = gen::gnm(10, 20, 3);
    let problem = TriangleCount::new(&g);
    let plan = FaultPlan::random_corrupt(8, 7, 1);
    let config = EngineConfig::sequential(8, 2).with_plan(plan);
    match Engine::new(config).run(&problem) {
        Err(
            CamelotError::DecodeFailed { .. }
            | CamelotError::VerificationFailed { .. }
            | CamelotError::DecodeDisagreement { .. },
        ) => {}
        Err(other) => panic!("unexpected error class: {other}"),
        Ok(outcome) => {
            // Unique decoding can only return the true codeword within
            // radius; if it decoded, the answer must still be right.
            assert_eq!(outcome.output, count_triangles(&g));
        }
    }
}

#[test]
fn parallel_cluster_agrees_with_sequential() {
    let g = gen::gnm(10, 25, 9);
    let problem = TriangleCount::new(&g);
    let seq = Engine::sequential(4, 2).run(&problem).unwrap();
    let mut config = camelot::core::EngineConfig::sequential(4, 2);
    config.cluster = camelot::cluster::ClusterConfig::parallel(4);
    let par = Engine::new(config).run(&problem).unwrap();
    assert_eq!(seq.output, par.output);
    assert_eq!(seq.certificate, par.certificate);
}
