//! Property tests for the text formats: the certificate wire format and
//! the transport frame format must parse arbitrary and adversarially
//! mutated input to *errors* — never panic — and must round-trip every
//! well-formed message exactly.

use camelot::cluster::{
    encode_reply, parse_reply, serve_worker, ChaosEffect, EvalProgram, FaultKind, FrameBody,
    NodeFrames, Task, TransportError,
};
use camelot::core::{Certificate, PrimeProof};
use camelot::ff::{RngLike, SplitMix64};
use std::time::Duration;

/// A pseudo-random structural mutation: truncate, splice a byte,
/// duplicate or drop a line, or swap a token for garbage.
fn mutate(text: &str, rng: &mut SplitMix64) -> String {
    let mut s = text.to_string();
    match rng.next_u64() % 5 {
        0 => {
            // Truncate anywhere (on a char boundary).
            let cut = (rng.next_u64() as usize) % (s.len() + 1);
            while !s.is_char_boundary(cut.min(s.len())) {
                s.pop();
            }
            s.truncate(cut.min(s.len()));
        }
        1 => {
            // Overwrite one byte with printable garbage.
            if !s.is_empty() {
                let pos = (rng.next_u64() as usize) % s.len();
                if s.is_char_boundary(pos) && s.is_char_boundary(pos + 1) {
                    let garbage = (b'!' + (rng.next_u64() % 90) as u8) as char;
                    s.replace_range(pos..pos + 1, &garbage.to_string());
                }
            }
        }
        2 => {
            // Drop a line.
            let lines: Vec<&str> = s.lines().collect();
            if !lines.is_empty() {
                let drop = (rng.next_u64() as usize) % lines.len();
                s = lines
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != drop)
                    .map(|(_, l)| format!("{l}\n"))
                    .collect();
            }
        }
        3 => {
            // Duplicate a line.
            let lines: Vec<&str> = s.lines().collect();
            if !lines.is_empty() {
                let dup = (rng.next_u64() as usize) % lines.len();
                s = lines
                    .iter()
                    .enumerate()
                    .flat_map(|(i, l)| {
                        if i == dup {
                            vec![format!("{l}\n"), format!("{l}\n")]
                        } else {
                            vec![format!("{l}\n")]
                        }
                    })
                    .collect();
            }
        }
        _ => {
            // Replace a whitespace-separated token with a non-numeric one.
            let tokens: Vec<&str> = s.split_whitespace().collect();
            if !tokens.is_empty() {
                let victim = tokens[(rng.next_u64() as usize) % tokens.len()];
                s = s.replacen(victim, "∞garbage", 1);
            }
        }
    }
    s
}

fn random_ascii(rng: &mut SplitMix64, len: usize) -> String {
    (0..len)
        .map(|_| match rng.next_u64() % 8 {
            0 => '\n',
            1 => ' ',
            2 => '-',
            _ => (b' ' + (rng.next_u64() % 95) as u8) as char,
        })
        .collect()
}

fn sample_certificate() -> Certificate {
    Certificate {
        proofs: vec![
            PrimeProof { modulus: 1_048_583, coefficients: vec![17, 0, 99, 1_000_000] },
            PrimeProof { modulus: 1_048_589, coefficients: vec![3] },
        ],
        code_length: 21,
        degree_bound: 3,
        identified_faulty_nodes: vec![2, 9],
        crashed_nodes: vec![4],
    }
}

fn sample_task() -> Task {
    Task {
        modulus: 1_048_583,
        nodes: 6,
        node: 4,
        fault: FaultKind::Corrupt { seed: 77 },
        programs: vec![EvalProgram::Poly(vec![1, 2, 3]), EvalProgram::Poly(vec![0, 0, 9])],
        lo: 12,
        points: vec![12, 13, 14],
        chaos: Some(ChaosEffect::Garble { seed: 5 }),
        deadline_ms: 250,
    }
}

fn sample_replies() -> Vec<NodeFrames> {
    vec![
        NodeFrames {
            node: 0,
            evaluations: 4,
            elapsed: Duration::from_nanos(812),
            body: FrameBody::Uniform(vec![Some(1), None, Some(0), Some(1_048_582)]),
        },
        NodeFrames {
            node: 5,
            evaluations: 2,
            elapsed: Duration::ZERO,
            body: FrameBody::PerReceiver {
                base: vec![Some(10), Some(20)],
                per_receiver: vec![
                    vec![Some(11), Some(21)],
                    vec![Some(12), None],
                    vec![None, Some(23)],
                ],
            },
        },
    ]
}

/// 500 structural mutations of a valid certificate: every parse returns
/// (it may legitimately succeed — a mutation can produce another valid
/// certificate — but a success must re-serialize losslessly).
#[test]
fn mutated_certificates_parse_to_errors_or_valid_certificates() {
    let wire = sample_certificate().to_wire();
    let mut rng = SplitMix64::new(0xCE21);
    for trial in 0..500 {
        let mutated = mutate(&wire, &mut rng);
        if let Ok(cert) = Certificate::from_wire(&mutated) {
            let reparsed = Certificate::from_wire(&cert.to_wire()).unwrap_or_else(|e| {
                panic!("trial {trial}: accepted certificate no longer parses: {e}")
            });
            assert_eq!(reparsed, cert, "trial {trial}");
        }
    }
}

/// Random ASCII soup never panics any of the three parsers.
#[test]
fn random_garbage_never_panics_any_parser() {
    let mut rng = SplitMix64::new(0xDEAD);
    for _ in 0..500 {
        let len = (rng.next_u64() % 400) as usize;
        let soup = random_ascii(&mut rng, len);
        let _ = Certificate::from_wire(&soup);
        let _ = Task::from_wire(&soup);
        let _ = parse_reply(&soup);
        // Headered soup exercises the section parsers, not just the
        // header check.
        let _ = Certificate::from_wire(&format!("camelot-certificate v1\n{soup}"));
        let _ = Task::from_wire(&format!("camelot-task v1\n{soup}"));
        let _ = parse_reply(&format!("camelot-reply v1\n{soup}"));
    }
}

/// 500 structural mutations of valid frame messages: parses return
/// errors or re-encodable values, never panic.
#[test]
fn mutated_frames_parse_to_errors_or_reencodable_frames() {
    let task_wire = sample_task().to_wire();
    let reply_wires: Vec<String> = sample_replies().iter().map(encode_reply).collect();
    let mut rng = SplitMix64::new(0xBEEF);
    for trial in 0..500 {
        if let Ok(task) = Task::from_wire(&mutate(&task_wire, &mut rng)) {
            assert_eq!(Task::from_wire(&task.to_wire()).unwrap(), task, "trial {trial}");
        }
        for wire in &reply_wires {
            if let Ok(frames) = parse_reply(&mutate(wire, &mut rng)) {
                assert_eq!(parse_reply(&encode_reply(&frames)).unwrap(), frames, "trial {trial}");
            }
        }
    }
}

/// Randomized round-trip: arbitrary well-formed tasks and replies
/// survive encode → parse exactly.
#[test]
fn random_frames_roundtrip_exactly() {
    let mut rng = SplitMix64::new(0xF00D);
    for trial in 0..200 {
        let nodes = 1 + (rng.next_u64() % 7) as usize;
        let width = 1 + (rng.next_u64() % 3) as usize;
        let fault = match rng.next_u64() % 5 {
            0 => FaultKind::Honest,
            1 => FaultKind::Crash,
            2 => FaultKind::Corrupt { seed: rng.next_u64() },
            3 => FaultKind::Adversarial { offset: rng.next_u64() },
            _ => FaultKind::Equivocate { seed: rng.next_u64() },
        };
        let slice = (rng.next_u64() % 5) as usize;
        let chaos = match rng.next_u64() % 8 {
            0 => Some(ChaosEffect::Delay { millis: rng.next_u64() % 1000 }),
            1 => Some(ChaosEffect::DropFrame),
            2 => Some(ChaosEffect::Truncate { seed: rng.next_u64() }),
            3 => Some(ChaosEffect::Garble { seed: rng.next_u64() }),
            4 => Some(ChaosEffect::Duplicate),
            5 => Some(ChaosEffect::Reset),
            6 => Some(ChaosEffect::Hang),
            _ => None,
        };
        let task = Task {
            modulus: 2 + rng.next_u64() % (1 << 40),
            nodes,
            node: (rng.next_u64() as usize) % nodes,
            fault,
            programs: (0..width)
                .map(|_| {
                    EvalProgram::Poly(
                        (0..rng.next_u64() % 6).map(|_| rng.next_u64() % (1 << 30)).collect(),
                    )
                })
                .collect(),
            lo: (rng.next_u64() % 1000) as usize,
            points: (0..slice as u64).collect(),
            chaos,
            deadline_ms: 1 + rng.next_u64() % 100_000,
        };
        assert_eq!(Task::from_wire(&task.to_wire()).unwrap(), task, "trial {trial}");

        let symbols = slice * width;
        let random_word = |rng: &mut SplitMix64| -> Vec<Option<u64>> {
            (0..symbols)
                .map(|_| (!rng.next_u64().is_multiple_of(4)).then(|| rng.next_u64() % (1 << 40)))
                .collect()
        };
        let body = if matches!(fault, FaultKind::Equivocate { .. }) {
            FrameBody::PerReceiver {
                base: random_word(&mut rng),
                per_receiver: (0..nodes).map(|_| random_word(&mut rng)).collect(),
            }
        } else {
            FrameBody::Uniform(random_word(&mut rng))
        };
        let frames = NodeFrames {
            node: task.node,
            evaluations: symbols,
            elapsed: Duration::from_nanos(rng.next_u64() % 1_000_000_000),
            body,
        };
        assert_eq!(parse_reply(&encode_reply(&frames)).unwrap(), frames, "trial {trial}");
    }
}

/// Drive a real worker over TCP with one payload and return its verdict.
/// The worker runs on its own thread exactly as the socket backend spawns
/// it; a panic in `serve_worker` would poison the join and fail the test.
fn serve_payload(payload: &[u8]) -> Result<(), TransportError> {
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let worker = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        serve_worker(stream)
    });
    let mut client = TcpStream::connect(addr).expect("connect");
    client.write_all(payload).expect("send payload");
    drop(client);
    worker.join().expect("worker must refuse garbage, not panic")
}

#[test]
fn worker_refuses_garbage_frames_instead_of_aborting() {
    // Structurally hostile payloads: wrong magic, truncated task, binary
    // noise, an unknown section, a width/points contradiction. Every one
    // must come back as a reported refusal (a TransportError), with the
    // worker thread alive to return it.
    let cases: &[&[u8]] = &[
        b"",
        b"\n\n\n",
        b"camelot-task v1\nend\n",
        b"camelot-task v2\nend\n",
        b"HTTP/1.1 GET /\r\n\r\n",
        b"camelot-task v1\nfield 0\ncluster 0\nnode 9\nwidth 0\nend\n",
        b"camelot-task v1\nfield 1048583\ncluster 6\nnode 4\nwidth 1\nfrobnicate\nend\n",
        b"camelot-task v1\nfield 1048583\ncluster 6\nnode 99\nwidth 1\nprogram 0 poly 1 2\npoints 0 5\nend\n",
        b"\xff\xfe\x00\x80garbage\nend\n",
    ];
    for payload in cases {
        let got = serve_payload(payload);
        assert!(
            matches!(got, Err(TransportError::Protocol { .. }) | Err(TransportError::Io { .. })),
            "worker accepted hostile payload {payload:?}: {got:?}"
        );
    }
}

#[test]
fn worker_survives_mutated_tasks_as_refusal_or_answer() {
    // Mutations of a well-formed task frame: whatever the worker makes of
    // them — a computed reply or a protocol refusal — it must never panic.
    let wire = sample_task().to_wire();
    let mut rng = SplitMix64::new(0x5EED_F00D);
    for _ in 0..60 {
        let mutated = mutate(&wire, &mut rng);
        match Task::from_wire(&mutated) {
            // Parseable mutants are served end to end over the socket.
            Ok(_) => match serve_payload(mutated.as_bytes()) {
                Ok(()) | Err(_) => {}
            },
            // Unparseable mutants must be refused over the socket too.
            Err(_) => {
                let got = serve_payload(mutated.as_bytes());
                assert!(got.is_err(), "parser refused but worker accepted: {mutated:?}");
            }
        }
    }
}
