//! Property-based tests (proptest) on the framework's core invariants.

use camelot::ff::{crt_i, crt_u, IBig, PrimeField, Residue, UBig};
use camelot::poly::{interpolate, Poly};
use camelot::rscode::RsCode;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// decode(encode(P) + any error pattern within radius) == P, with the
    /// error positions identified exactly.
    #[test]
    fn rs_roundtrip_within_radius(
        coeffs in prop::collection::vec(0u64..1_000_000_007, 1..12),
        extra in 2usize..24,
        err_seed in any::<u64>(),
    ) {
        let field = PrimeField::new(1_000_000_007).unwrap();
        let msg = Poly::from_coeffs(&field, coeffs);
        let d = msg.degree().unwrap_or(0);
        let e = d + 1 + extra;
        let code = RsCode::consecutive(&field, e);
        let clean = code.encode(&field, &msg);
        let radius = code.correction_radius(d);
        // Pseudorandom error pattern within the radius.
        let mut word: Vec<Option<u64>> = clean.iter().copied().map(Some).collect();
        let mut positions = std::collections::BTreeSet::new();
        let mut s = err_seed;
        while positions.len() < radius {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            positions.insert((s >> 33) as usize % e);
        }
        for &p in &positions {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            word[p] = Some(field.add(clean[p], 1 + (s >> 33) % 1000));
        }
        let decoded = code.decode(&field, &word, d).unwrap();
        prop_assert_eq!(&decoded.poly, &msg);
        prop_assert_eq!(decoded.error_positions, positions.into_iter().collect::<Vec<_>>());
    }

    /// Interpolation is a left inverse of evaluation.
    #[test]
    fn interpolation_inverts_evaluation(
        coeffs in prop::collection::vec(0u64..65_537, 1..20),
    ) {
        let field = PrimeField::new(65_537).unwrap();
        let p = Poly::from_coeffs(&field, coeffs);
        let n = p.degree().map_or(1, |d| d + 1);
        let pts: Vec<(u64, u64)> = (0..n as u64).map(|x| (x, p.eval(&field, x))).collect();
        prop_assert_eq!(interpolate(&field, &pts), p);
    }

    /// CRT round-trips arbitrary u128 values through 3 large primes.
    #[test]
    fn crt_roundtrip_u128(x in any::<u128>()) {
        let primes = camelot::ff::primes_above(1 << 61, 3);
        let residues: Vec<Residue> = primes
            .iter()
            .map(|&q| Residue { modulus: q, value: (x % u128::from(q)) as u64 })
            .collect();
        prop_assert_eq!(crt_u(&residues).to_u128(), Some(x));
    }

    /// Signed CRT round-trips i64 values (symmetric lift).
    #[test]
    fn crt_roundtrip_signed(x in any::<i64>()) {
        let primes = camelot::ff::primes_above(1 << 40, 2);
        let residues: Vec<Residue> = primes
            .iter()
            .map(|&q| Residue { modulus: q, value: x.rem_euclid(q as i64) as u64 })
            .collect();
        prop_assert_eq!(crt_i(&residues).to_i64(), Some(x));
    }

    /// UBig arithmetic agrees with u128 where comparable.
    #[test]
    fn ubig_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let (ba, bb) = (UBig::from_u64(a), UBig::from_u64(b));
        prop_assert_eq!(ba.add(&bb).to_u128(), Some(u128::from(a) + u128::from(b)));
        prop_assert_eq!(ba.mul(&bb).to_u128(), Some(u128::from(a) * u128::from(b)));
        if a >= b {
            prop_assert_eq!(ba.sub(&bb).to_u64(), Some(a - b));
        }
        if b != 0 {
            let (q, r) = ba.div_rem_u64(b);
            prop_assert_eq!(q.to_u64(), Some(a / b));
            prop_assert_eq!(r, a % b);
        }
    }

    /// IBig ring laws on random i64 triples.
    #[test]
    fn ibig_ring_laws(a in any::<i32>(), b in any::<i32>(), c in any::<i32>()) {
        let (ia, ib, ic) = (IBig::from_i64(a.into()), IBig::from_i64(b.into()), IBig::from_i64(c.into()));
        // (a + b) * c == a*c + b*c
        prop_assert_eq!(
            ia.add(&ib).mul(&ic),
            ia.mul(&ic).add(&ib.mul(&ic))
        );
        // a - a == 0, a * 1 == a
        prop_assert!(ia.sub(&ia).is_zero());
        prop_assert_eq!(ia.mul(&IBig::from_i64(1)), ia);
    }

    /// Field axioms under random triples.
    #[test]
    fn field_axioms(a in 0u64..4_294_967_291, b in 0u64..4_294_967_291, c in 0u64..4_294_967_291) {
        let f = PrimeField::new(4_294_967_291).unwrap(); // largest 32-bit prime
        prop_assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
        prop_assert_eq!(f.add(a, b), f.add(b, a));
        prop_assert_eq!(f.mul(a, b), f.mul(b, a));
        prop_assert_eq!(f.sub(f.add(a, b), b), a);
        if a != 0 {
            prop_assert_eq!(f.mul(a, f.inv(a)), 1);
        }
        prop_assert_eq!(f.pow(a, 4_294_967_290), if a == 0 { 0 } else { 1 });
    }
}
