//! Property-based tests on the framework's core invariants.
//!
//! Hand-rolled: the build environment has no crates.io registry, so
//! instead of `proptest` each property runs against 64 deterministic
//! pseudo-random cases drawn from the workspace's own [`SplitMix64`].

use camelot::ff::{crt_i, crt_u, IBig, PrimeField, Residue, RngLike, SplitMix64, UBig};
use camelot::poly::{interpolate, Poly};
use camelot::rscode::RsCode;

const CASES: u64 = 64;

/// decode(encode(P) + any error pattern within radius) == P, with the
/// error positions identified exactly.
#[test]
fn rs_roundtrip_within_radius() {
    let field = PrimeField::new(1_000_000_007).unwrap();
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x25_C0DE ^ case);
        let len = 1 + (rng.next_u64() % 11) as usize;
        let coeffs: Vec<u64> = (0..len).map(|_| rng.next_u64() % 1_000_000_007).collect();
        let extra = 2 + (rng.next_u64() % 22) as usize;
        let err_seed = rng.next_u64();

        let msg = Poly::from_coeffs(&field, coeffs);
        let d = msg.degree().unwrap_or(0);
        let e = d + 1 + extra;
        let code = RsCode::consecutive(&field, e);
        let clean = code.encode(&field, &msg);
        let radius = code.correction_radius(d);
        // Pseudorandom error pattern within the radius.
        let mut word: Vec<Option<u64>> = clean.iter().copied().map(Some).collect();
        let mut positions = std::collections::BTreeSet::new();
        let mut s = err_seed;
        while positions.len() < radius {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            positions.insert((s >> 33) as usize % e);
        }
        for &p in &positions {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            word[p] = Some(field.add(clean[p], 1 + (s >> 33) % 1000));
        }
        let decoded = code.decode(&field, &word, d).unwrap();
        assert_eq!(&decoded.poly, &msg, "case {case}");
        assert_eq!(
            decoded.error_positions,
            positions.into_iter().collect::<Vec<_>>(),
            "case {case}"
        );
    }
}

/// Interpolation is a left inverse of evaluation.
#[test]
fn interpolation_inverts_evaluation() {
    let field = PrimeField::new(65_537).unwrap();
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x0001_A7E4_CA5E ^ case);
        let len = 1 + (rng.next_u64() % 19) as usize;
        let coeffs: Vec<u64> = (0..len).map(|_| rng.next_u64() % 65_537).collect();
        let p = Poly::from_coeffs(&field, coeffs);
        let n = p.degree().map_or(1, |d| d + 1);
        let pts: Vec<(u64, u64)> = (0..n as u64).map(|x| (x, p.eval(&field, x))).collect();
        assert_eq!(interpolate(&field, &pts), p, "case {case}");
    }
}

/// CRT round-trips arbitrary u128 values through 3 large primes,
/// including the boundary values uniform sampling would miss.
#[test]
fn crt_roundtrip_u128() {
    let primes = camelot::ff::primes_above(1 << 61, 3);
    let random = (0..CASES).map(|case| {
        let mut rng = SplitMix64::new(0xC47 ^ case);
        u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64())
    });
    for x in [0u128, 1, u128::from(u64::MAX), u128::from(u64::MAX) + 1].into_iter().chain(random) {
        let residues: Vec<Residue> = primes
            .iter()
            .map(|&q| Residue { modulus: q, value: (x % u128::from(q)) as u64 })
            .collect();
        assert_eq!(crt_u(&residues).to_u128(), Some(x), "x = {x}");
    }
}

/// Signed CRT round-trips i64 values (symmetric lift), including the
/// extremes of the signed range.
#[test]
fn crt_roundtrip_signed() {
    let primes = camelot::ff::primes_above(1 << 40, 2);
    let random = (0..CASES).map(|case| {
        let mut rng = SplitMix64::new(0x51_6E ^ case);
        rng.next_u64() as i64
    });
    for x in [0i64, 1, -1, i64::MIN, i64::MAX].into_iter().chain(random) {
        let residues: Vec<Residue> = primes
            .iter()
            .map(|&q| Residue { modulus: q, value: x.rem_euclid(q as i64) as u64 })
            .collect();
        assert_eq!(crt_i(&residues).to_i64(), Some(x), "x = {x}");
    }
}

/// UBig arithmetic agrees with u128 where comparable, including the
/// carry/borrow boundary values uniform sampling would miss.
#[test]
fn ubig_matches_u128() {
    let random = (0..CASES).map(|case| {
        let mut rng = SplitMix64::new(0xB16 ^ case);
        (rng.next_u64(), rng.next_u64())
    });
    let edges = [(0u64, 0u64), (0, u64::MAX), (u64::MAX, u64::MAX), (u64::MAX, 1), (1, 0)];
    for (a, b) in edges.into_iter().chain(random) {
        let (ba, bb) = (UBig::from_u64(a), UBig::from_u64(b));
        assert_eq!(ba.add(&bb).to_u128(), Some(u128::from(a) + u128::from(b)));
        assert_eq!(ba.mul(&bb).to_u128(), Some(u128::from(a) * u128::from(b)));
        if a >= b {
            assert_eq!(ba.sub(&bb).to_u64(), Some(a - b));
        }
        if b != 0 {
            let (q, r) = ba.div_rem_u64(b);
            assert_eq!(q.to_u64(), Some(a / b));
            assert_eq!(r, a % b);
        }
    }
}

/// IBig ring laws on random i32 triples, plus the signed extremes.
#[test]
fn ibig_ring_laws() {
    let random = (0..CASES).map(|case| {
        let mut rng = SplitMix64::new(0x1B16 ^ case);
        (rng.next_u64() as i32, rng.next_u64() as i32, rng.next_u64() as i32)
    });
    let edges = [(0i32, 0i32, 0i32), (i32::MIN, i32::MAX, -1), (i32::MIN, i32::MIN, i32::MIN)];
    for (a, b, c) in edges.into_iter().chain(random) {
        let (ia, ib, ic) =
            (IBig::from_i64(a.into()), IBig::from_i64(b.into()), IBig::from_i64(c.into()));
        // (a + b) * c == a*c + b*c
        assert_eq!(ia.add(&ib).mul(&ic), ia.mul(&ic).add(&ib.mul(&ic)));
        // a - a == 0, a * 1 == a
        assert!(ia.sub(&ia).is_zero());
        assert_eq!(ia.mul(&IBig::from_i64(1)), ia);
    }
}

/// Field axioms under random triples.
#[test]
fn field_axioms() {
    let f = PrimeField::new(4_294_967_291).unwrap(); // largest 32-bit prime
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xF1E1D ^ case);
        let (a, b, c) = (f.sample(&mut rng), f.sample(&mut rng), f.sample(&mut rng));
        assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
        assert_eq!(f.add(a, b), f.add(b, a));
        assert_eq!(f.mul(a, b), f.mul(b, a));
        assert_eq!(f.sub(f.add(a, b), b), a);
        if a != 0 {
            assert_eq!(f.mul(a, f.inv(a)), 1);
        }
        assert_eq!(f.pow(a, 4_294_967_290), if a == 0 { 0 } else { 1 });
    }
}
