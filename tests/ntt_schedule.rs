//! Engine-level regressions for the NTT-friendly prime schedule: the two
//! schedules must recover identical answers, and the proofs produced
//! under either schedule must pass independent spot-check verification —
//! the verifier never needs to know which schedule prepared a proof.

use camelot::core::{ntt_log_len, spot_check, Engine, EngineConfig};
use camelot::graph::{count_triangles, gen};
use camelot::triangles::TriangleCount;

/// Default-schedule and NTT-schedule runs of the same problem recover
/// the same answer, and each mode's verifier accepts the other mode's
/// proofs (spot checks are schedule-agnostic: they only see a modulus
/// and coefficients).
#[test]
fn schedules_accept_each_others_proofs() {
    let g = gen::gnm(14, 38, 21);
    let problem = TriangleCount::new(&g);

    let default_run = Engine::sequential(6, 8).run(&problem).expect("default schedule");
    let ntt_run = Engine::new(EngineConfig::sequential(6, 8).with_ntt_primes())
        .run(&problem)
        .expect("NTT schedule");

    assert_eq!(default_run.output, count_triangles(&g));
    assert_eq!(default_run.output, ntt_run.output);

    // The NTT schedule actually changed the moduli…
    let k = ntt_log_len(ntt_run.report.code_length);
    for &q in &ntt_run.report.primes {
        assert_eq!((q - 1) % (1u64 << k), 0, "prime {q} is not 1 mod 2^{k}");
    }
    assert_ne!(default_run.report.primes, ntt_run.report.primes);

    // …and proofs from either schedule verify independently: cross-check
    // every proof of each run with the spot-check verifier.
    for proof in default_run.certificate.proofs.iter().chain(&ntt_run.certificate.proofs) {
        let report = spot_check(&problem, proof, 8, 0xA11CE).expect("well-formed proof");
        assert!(report.accepted, "proof mod {} rejected", proof.modulus);
    }
}

/// Batched runs honour the configured schedule exactly like solo runs.
#[test]
fn batch_uses_the_configured_schedule() {
    let graphs = [gen::gnm(10, 22, 3), gen::petersen()];
    let problems: Vec<TriangleCount> = graphs.iter().map(TriangleCount::new).collect();
    let engine = Engine::new(EngineConfig::sequential(5, 6).with_ntt_primes());

    let batched = engine.run_batch(&problems).expect("batch run");
    for (outcome, graph) in batched.iter().zip(&graphs) {
        assert_eq!(outcome.output, count_triangles(graph));
        let k = ntt_log_len(outcome.report.code_length);
        for &q in &outcome.report.primes {
            assert_eq!((q - 1) % (1u64 << k), 0);
        }
    }
    // Same joint spec ⇒ same shared schedule across the batch.
    assert!(batched.windows(2).all(|w| w[0].report.primes == w[1].report.primes));
}
